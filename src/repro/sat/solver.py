"""Conflict-driven clause learning (CDCL) SAT solver on a flat clause arena.

This is the production solving engine of the reproduction.  It implements the
standard MiniSat-style architecture:

* two-watched-literal unit propagation with **blocker literals**,
* dedicated **binary and ternary implication lists** (2- and 3-literal
  clauses propagate with zero watch-list traffic — on the mapper's guarded
  incremental encodings, where every at-most-one clause carries a selector
  guard and is therefore ternary, this is the bulk of the formula),
* first-UIP conflict analysis with learned-clause minimisation,
* VSIDS variable activities with exponential decay,
* phase saving,
* Luby-sequence restarts,
* learned-clause database reduction driven by LBD (literals blocks distance),
  with **arena compaction** once enough garbage accumulates.

The solver is **incremental**: the clause database, variable activities,
saved phases and learned clauses all persist across :meth:`CDCLSolver.solve`
calls.  Clauses and variables are added through :meth:`CDCLSolver.add_clause`
/ :meth:`CDCLSolver.add_clauses` and :meth:`CDCLSolver.new_var` /
:meth:`CDCLSolver.new_vars`, and each ``solve`` call takes a list of
assumption literals that are replayed as pseudo-decisions below the real
search (the MiniSat ``solve(assumps)`` interface).  This is what makes the
mapper's iterative loop cheap: retiring one (II, slack) attempt and starting
the next is an assumption flip, not a rebuild.

For convenience ``solve`` also accepts a :class:`repro.sat.cnf.CNF`; passing
one resets the solver and loads the formula, reproducing the classic
one-shot behaviour the test-suite and the ablation benchmarks rely on.

Data layout (the whole mapper is pure Python and unit propagation is its
hottest loop, so the layout is flat integer arrays rather than objects):

* literals are re-encoded as ``2 * var`` (positive) / ``2 * var + 1``
  (negative); truth values live in a literal-indexed array;
* clauses of four or more literals live contiguously in a single **arena**
  (a flat list of literals) and are addressed by an integer *clause ref*
  indexing the parallel header arrays ``offset`` / ``size`` / ``lbd`` /
  ``activity`` / ``learned`` (``size == 0`` marks a deleted clause awaiting
  compaction);
* watch lists hold ``(clause_ref, blocker_lit)`` pairs — a clause whose
  *blocker* literal is already true is skipped without touching the arena;
* binary clauses are stored purely as implications: ``(a, b)`` becomes
  ``¬a → b`` and ``¬b → a`` in per-literal implication lists;
* ternary clauses are stored purely as their three implication entries:
  clause ``(a, b, c)`` is registered in the ternary lists of all three
  negated literals as the pair of remaining literals, so a visit is just
  two truth-value reads and clauses never migrate between lists.

Propagation *reasons* are tagged integers instead of clause objects:
``code & 3`` is ``0`` for an arena ref (``code >> 2``), ``1`` for a binary
clause (the other literal in ``code >> 2``), ``2`` for a ternary clause
(the two other literals bit-packed as ``(a << 32) | (b << 2)``); ``-1``
marks a decision.

The two watched literals of an arena clause are always at positions
``offset`` and ``offset + 1``; when a clause becomes a propagation reason its
implied literal sits at ``offset``.  Deletion detaches the two watch entries
by swap-remove (no ``list.remove`` scans-and-shifts) and marks the header
dead; :meth:`_reduce_learned` compacts the arena once dead literals exceed a
quarter of it, remapping every surviving ref in the watch lists, the clause
lists and the tagged reason codes.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field
from collections.abc import Iterable, Sequence

from repro.sat.cnf import CNF

#: Version tag of the solving core.  The persistent mapping cache
#: (:mod:`repro.search.cache`) folds it into every cache key, so entries
#: computed by an older engine are invalidated the moment the core's
#: semantics-affecting behaviour changes.  Bump it whenever a change can
#: alter *which* mapping (not just how fast) a configuration produces.
SOLVER_VERSION = "flat-arena-1"

_UNASSIGNED = 0
_TRUE = 1
_FALSE = -1

#: Reason code for decisions / unforced assignments (``-1 & 3 == 3`` keeps
#: it disjoint from the clause tags).
_NO_REASON = -1

#: Learned clauses longer than this get the full recursive (MiniSat
#: ccmin 2) minimisation; shorter ones use the cheap one-step check.  Long
#: clauses are where deep minimisation pays twice — less analysis work and
#: fewer watch visits on every later conflict — while on short clauses the
#: DFS costs more than it saves.
_DEEP_MINIMISE_THRESHOLD = 200

#: Bit layout of ternary reason codes: ``(other_a << _TERN_SHIFT) |
#: (other_b << 2) | 2``.  30 bits for the low literal supports half a
#: billion variables — far beyond anything a pure-Python solver will see.
_TERN_SHIFT = 32
_TERN_MASK = (1 << 30) - 1


@dataclass
class SolverStats:
    """Counters describing the work done by a single ``solve`` call."""

    decisions: int = 0
    propagations: int = 0
    conflicts: int = 0
    restarts: int = 0
    learned_clauses: int = 0
    deleted_clauses: int = 0
    max_decision_level: int = 0
    solve_time: float = 0.0
    #: Implications delivered by the binary/ternary implication lists (work
    #: that previously went through the watch machinery).
    binary_propagations: int = 0
    #: Watch-list entries skipped because their blocker literal was already
    #: true — satisfied clauses dismissed without touching the arena.
    blocker_skips: int = 0
    #: Size of the clause arena (bytes, nominal 8 bytes per literal slot)
    #: when the call returned.
    arena_bytes: int = 0


@dataclass
class SolverResult:
    """Outcome of a ``solve`` call.

    ``status`` is one of ``"SAT"``, ``"UNSAT"`` or ``"UNKNOWN"`` (the latter
    when a conflict or time budget was exhausted).  ``model`` maps every
    problem variable to a boolean when the status is ``"SAT"`` — or only the
    requested projection when ``solve(model_vars=...)`` was used.
    """

    status: str
    model: dict[int, bool] | None = None
    stats: SolverStats = field(default_factory=SolverStats)

    @property
    def is_sat(self) -> bool:
        return self.status == "SAT"

    @property
    def is_unsat(self) -> bool:
        return self.status == "UNSAT"


class CDCLSolver:
    """An incremental CDCL SAT solver with VSIDS, restarts and clause deletion."""

    name = "cdcl"

    def __init__(
        self,
        var_decay: float = 0.95,
        clause_decay: float = 0.999,
        restart_base: int = 100,
        learned_limit_base: int = 4000,
        random_seed: int | None = None,
        initial_phase: bool = False,
        activity_hints: dict[int, float] | None = None,
        phase_hints: dict[int, bool] | None = None,
        proof: "object | None" = None,
    ) -> None:
        self.var_decay = var_decay
        self.clause_decay = clause_decay
        self.restart_base = restart_base
        self.learned_limit_base = learned_limit_base
        self.random_seed = random_seed
        #: Optional :class:`repro.sat.drat.ProofLogger`.  When set, every
        #: learned clause (all 1-UIP derivations are RUP, hence DRAT) and
        #: every database deletion is logged; UNSAT under assumptions logs
        #: the negated assumption cube as its final addition.  Deletions
        #: outside ``_reduce_learned`` (e.g. retire-time simplification) are
        #: deliberately not logged — omitting a deletion only leaves extra
        #: verified clauses in the checker, which is always sound.
        self.proof = proof
        #: Polarity tried first for a variable that has never been assigned.
        #: ``True`` makes the search constructive (useful for placement-style
        #: exactly-one formulas), ``False`` is the classic MiniSat default.
        self.initial_phase = initial_phase
        #: Optional VSIDS warm start: variables with larger values are
        #: branched on first until conflict-driven activity takes over.
        self.activity_hints = activity_hints or {}
        #: Optional per-variable initial polarity (overrides initial_phase).
        self.phase_hints = phase_hints or {}
        self.stats = SolverStats()
        self._reset()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    @property
    def num_vars(self) -> int:
        """Number of variables known to the solver."""
        return self._nvars

    @property
    def num_learned(self) -> int:
        """Learned clauses currently alive in the database."""
        return len(self._learned) + self._num_bin_learned + self._num_tern_learned

    @property
    def num_clauses(self) -> int:
        """Problem clauses currently attached (excludes root units)."""
        return len(self._clauses) + self._num_bin_problem + self._num_tern_problem

    @property
    def arena_bytes(self) -> int:
        """Nominal size of the flat clause stores (8 bytes per literal slot)."""
        ternary_lits = 3 * (self._num_tern_problem + self._num_tern_learned)
        return (len(self._arena) + ternary_lits) * 8

    def new_var(self) -> int:
        """Allocate and return a fresh variable."""
        self._nvars += 1
        var = self._nvars
        self._value.extend((_UNASSIGNED, _UNASSIGNED))
        self._level.append(0)
        self._reason.append(_NO_REASON)
        activity = float(self.activity_hints.get(var, 0.0))
        self._activity.append(activity)
        self._phase.append(bool(self.phase_hints.get(var, self.initial_phase)))
        self._watches.append([])
        self._watches.append([])
        self._bins.append([])
        self._bins.append([])
        self._terns.append([])
        self._terns.append([])
        self._gterns.append([])
        self._gterns.append([])
        self._tern_guard.append(-1)
        self._tern_guard.append(-1)
        self._seen.append(False)
        self._heap_count.append(1)
        self._heap_act.append(activity)
        heapq.heappush(self._order, (-activity, var))
        return var

    def new_vars(self, count: int) -> list[int]:
        """Bulk-allocate ``count`` fresh variables (one call, list extends).

        The encoder allocates tens of thousands of variables per attempt;
        growing every per-variable array in one ``extend`` instead of
        ``count`` method calls makes variable creation cheap enough to
        disappear from the encode profile.
        """
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        if count == 0:
            return []
        if self.activity_hints or self.phase_hints:
            # Hints need per-variable treatment; fall back to the slow path.
            return [self.new_var() for _ in range(count)]
        start = self._nvars + 1
        self._nvars += count
        variables = list(range(start, self._nvars + 1))
        self._value.extend([_UNASSIGNED] * (2 * count))
        self._level.extend([0] * count)
        self._reason.extend([_NO_REASON] * count)
        self._activity.extend([0.0] * count)
        self._phase.extend([self.initial_phase] * count)
        double = 2 * count
        self._watches.extend([[] for _ in range(double)])
        self._bins.extend([[] for _ in range(double)])
        self._terns.extend([[] for _ in range(double)])
        self._gterns.extend([[] for _ in range(double)])
        self._tern_guard.extend([-1] * double)
        self._seen.extend([False] * count)
        self._heap_count.extend([1] * count)
        self._heap_act.extend([0.0] * count)
        # Fresh zero-activity entries are >= every existing heap entry
        # ((-activity, var) with activity >= 0 and strictly growing var), so
        # appending them as leaves preserves the heap invariant without any
        # sifting.
        self._order.extend((-0.0, var) for var in variables)
        return variables

    def ensure_vars(self, num_vars: int) -> None:
        """Grow the variable universe so ``num_vars`` is a valid variable."""
        if num_vars > self._nvars:
            self.new_vars(num_vars - self._nvars)

    def add_clause(self, literals: Sequence[int]) -> bool:
        """Add a clause to the persistent database.

        The clause is simplified against the root-level assignment (MiniSat
        style): literals already false at level 0 are dropped, and a clause
        containing a root-true literal is discarded as satisfied.  Returns
        ``False`` when the formula became unsatisfiable at level 0 (the
        solver then answers ``UNSAT`` forever), ``True`` otherwise.
        """
        if self._unsat:
            return False
        self.clauses_added += 1
        self._backtrack(0)
        lits = self._simplify_external(literals)
        if lits is None:
            return True  # tautology or satisfied at the root level
        if not lits:
            self._unsat = True
            return False
        if len(lits) == 1:
            if not self._enqueue(lits[0], _NO_REASON) or self._propagate() is not None:
                self._unsat = True
                return False
            return True
        self._attach(lits)
        return True

    def add_clauses(
        self,
        clauses: Iterable[Sequence[int]],
        trusted: bool = False,
        guard: int | None = None,
    ) -> bool:
        """Bulk :meth:`add_clause`: one backtrack, batched root propagation.

        Semantically equivalent to calling ``add_clause`` per clause, but
        root-level unit propagation is deferred until a subsequent clause
        actually needs an up-to-date assignment (attaching watches on a
        stale-false literal would break the watch invariant), so a batch of
        unit clauses — the mapper retires attempts with exactly such a batch
        — triggers a single propagation sweep instead of one per unit.

        ``trusted=True`` promises every clause is already clean — no zero
        literals, no duplicate or complementary literals within a clause —
        which lets the ingest loop skip the per-literal seen-set (the
        encoder's batching emitter constructs exactly such clauses).
        Root-level truth filtering still runs; trust only waives the
        *intra-clause* hygiene checks.

        ``guard`` names the selector guard literal (signed, external form)
        shared by the batch's clauses: a ternary clause whose tail literal
        is the guard is routed to the guard-aware implication lists (see
        ``_gterns``), which propagate with a single truth-value read per
        entry and are dismissed wholesale once the attempt is retired.
        """
        if self._unsat:
            return False
        self._backtrack(0)
        count = 0
        value = self._value
        pending = self._qhead < len(self._trail)
        bins = self._bins
        terns = self._terns
        gterns = self._gterns
        tern_guard = self._tern_guard
        watches = self._watches
        if guard is not None:
            self.ensure_vars(abs(guard))
            guard_internal = self._to_internal(guard)
        else:
            guard_internal = -1
        for literals in clauses:
            count += 1
            if trusted:
                lits = []
                satisfied = False
                for lit in literals:
                    # 2v / 2v+1 encoding straight from the signed literal;
                    # unknown variables surface as an IndexError (zero-cost
                    # when every variable is pre-allocated, as the encoder
                    # guarantees).
                    internal = lit + lit if lit > 0 else 1 - (lit + lit)
                    try:
                        v = value[internal]
                    except IndexError:
                        self.ensure_vars(abs(lit))
                        v = value[internal]
                    if v == _TRUE:
                        satisfied = True
                        break
                    if v == _FALSE:
                        continue
                    lits.append(internal)
                if satisfied:
                    continue
            else:
                maybe = self._simplify_external(literals)
                if maybe is None:
                    continue
                lits = maybe
            length = len(lits)
            if length == 0:
                self.clauses_added += count
                self._unsat = True
                return False
            if length == 1:
                if not self._enqueue(lits[0], _NO_REASON):
                    self.clauses_added += count
                    self._unsat = True
                    return False
                pending = True
                continue
            if pending:
                # Pending units from this batch: flush them and re-simplify
                # so the attached watches sit on non-false literals.
                if self._propagate() is not None:
                    self.clauses_added += count
                    self._unsat = True
                    return False
                pending = False
                lits = self._resimplify_internal(lits)
                if lits is None:
                    continue
                length = len(lits)
                if length == 0:
                    self.clauses_added += count
                    self._unsat = True
                    return False
                if length == 1:
                    if not self._enqueue(lits[0], _NO_REASON):
                        self.clauses_added += count
                        self._unsat = True
                        return False
                    pending = True
                    continue
            # Inlined _attach (problem clauses only) — this loop ingests
            # tens of thousands of clauses per encoding attempt.
            if length == 2:
                first, second = lits
                bins[first ^ 1].append(second)
                bins[second ^ 1].append(first)
                self._num_bin_problem += 1
            elif length == 3:
                # Inlined guarded/plain ternary attach — the encoder pushes
                # tens of thousands of guard-tailed pairs per attempt.
                first, second, third = lits
                if third == guard_internal:
                    slot_a = first ^ 1
                    slot_b = second ^ 1
                    bound_a = tern_guard[slot_a]
                    bound_b = tern_guard[slot_b]
                    if (bound_a == -1 or bound_a == guard_internal) and (
                        bound_b == -1 or bound_b == guard_internal
                    ):
                        tern_guard[slot_a] = guard_internal
                        tern_guard[slot_b] = guard_internal
                        gterns[slot_a].append(second)
                        gterns[slot_b].append(first)
                        self._num_tern_problem += 1
                        continue
                terns[first ^ 1].append((second, third))
                terns[second ^ 1].append((first, third))
                terns[third ^ 1].append((first, second))
                self._num_tern_problem += 1
            else:
                ref = len(self._c_offset)
                self._c_offset.append(len(self._arena))
                self._c_size.append(length)
                self._c_lbd.append(0)
                self._c_act.append(0.0)
                self._c_learned.append(False)
                self._arena.extend(lits)
                first, second = lits[0], lits[1]
                watches[first ^ 1].append((ref, second))
                watches[second ^ 1].append((ref, first))
                self._clauses.append(ref)
        self.clauses_added += count
        if pending and self._propagate() is not None:
            self._unsat = True
            return False
        return True

    def solve(
        self,
        cnf: CNF | None = None,
        assumptions: Sequence[int] = (),
        conflict_limit: int | None = None,
        time_limit: float | None = None,
        model_vars: Iterable[int] | None = None,
    ) -> SolverResult:
        """Decide satisfiability under optional ``assumptions``.

        Without ``cnf`` this is an incremental call on the persistent clause
        database (learned clauses, activities and phases are reused from
        earlier calls).  Passing a ``cnf`` resets the solver and loads the
        formula first — the classic one-shot interface.  ``conflict_limit``
        and ``time_limit`` (seconds) bound the search; when either budget is
        exhausted the result status is ``"UNKNOWN"``.

        ``model_vars`` projects the SAT model onto just those variables —
        the mapper only decodes placement literals, and building the full
        ``{var: bool}`` dict over every variable the persistent solver has
        ever allocated is pure waste on large incremental databases.
        """
        start = time.perf_counter()
        # Fresh per-call stats *before* any work so clause-loading effort is
        # attributed to this call and earlier ``SolverResult`` objects are
        # never mutated after being returned.
        self.stats = SolverStats()
        propagations_start = self._propagations
        bin_props_start = self._bin_propagations
        blocker_skips_start = self._blocker_skips
        if cnf is not None:
            self._reset()
            propagations_start = bin_props_start = blocker_skips_start = 0
            self.ensure_vars(cnf.num_vars)
            self.add_clauses(cnf.clauses)
        self._backtrack(0)
        if not self._unsat and self._propagate() is not None:
            self._unsat = True
        if self._unsat:
            if self.proof is not None:
                self._proof_add(())
            self._fill_stats(propagations_start, bin_props_start,
                             blocker_skips_start, start)
            return SolverResult("UNSAT", None, self.stats)

        assumption_lits = []
        for lit in assumptions:
            self.ensure_vars(abs(lit))
            assumption_lits.append(self._to_internal(lit))
        status = self._search(assumption_lits, conflict_limit, time_limit, start)

        self._fill_stats(propagations_start, bin_props_start,
                         blocker_skips_start, start)
        if status == "SAT":
            value = self._value
            if model_vars is not None:
                model = {
                    var: value[var + var] == _TRUE
                    for var in model_vars
                    if 0 < var <= self._nvars
                }
            else:
                model = {
                    var: value[var + var] == _TRUE
                    for var in range(1, self._nvars + 1)
                }
            return SolverResult("SAT", model, self.stats)
        return SolverResult(status, None, self.stats)

    def _fill_stats(
        self, propagations_start: int, bin_props_start: int,
        blocker_skips_start: int, start: float,
    ) -> None:
        self.stats.propagations = self._propagations - propagations_start
        self.stats.binary_propagations = self._bin_propagations - bin_props_start
        self.stats.blocker_skips = self._blocker_skips - blocker_skips_start
        self.stats.arena_bytes = self.arena_bytes
        self.stats.solve_time = time.perf_counter() - start

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def _reset(self) -> None:
        """Drop all state: variables, clauses, learned clauses, activities."""
        self._nvars = 0
        #: literal-indexed truth values (index 2v / 2v+1)
        self._value: list[int] = [_UNASSIGNED, _UNASSIGNED]
        self._level: list[int] = [0]
        #: Tagged propagation reasons (see the module docstring).
        self._reason: list[int] = [_NO_REASON]
        self._activity: list[float] = [0.0]
        self._phase: list[bool] = [self.initial_phase]
        #: (clause_ref, blocker_lit) watch pairs per literal.
        self._watches: list[list[tuple[int, int]]] = [[], []]
        #: Binary implication lists: asserting ``lit`` implies every literal
        #: in ``_bins[lit]``.
        self._bins: list[list[int]] = [[], []]
        #: Ternary lists: asserting ``lit`` makes each ``(o1, o2)`` entry a
        #: two-literal check over the clause's remaining literals.
        self._terns: list[list[tuple[int, int]]] = [[], []]
        #: Guard-aware ternary lists for the mapper's selector-guarded
        #: clauses ``(a, b, ¬s)``: every entry of ``_gterns[lit]`` shares
        #: the single guard literal ``_tern_guard[lit]``, so while the
        #: attempt is live (guard false) a visit is *one* truth-value read,
        #: and once the attempt is retired (guard true at the root) the
        #: whole list is dismissed with one check.  Clauses register in the
        #: two non-guard literals' lists only — the selector's own lists
        #: stay empty, so restarts never sweep the constraint group.
        self._gterns: list[list[int]] = [[], []]
        self._tern_guard: list[int] = [-1, -1]
        self._trail: list[int] = []
        self._trail_lim: list[int] = []
        self._qhead = 0
        #: The flat clause arena (clauses of >= 4 literals) and its parallel
        #: header arrays.
        self._arena: list[int] = []
        self._c_offset: list[int] = []
        self._c_size: list[int] = []
        self._c_lbd: list[int] = []
        self._c_act: list[float] = []
        self._c_learned: list[bool] = []
        #: Dead literal slots in the arena awaiting compaction.
        self._garbage = 0
        #: Arena refs of problem / learned clauses (binary/ternary excluded).
        self._clauses: list[int] = []
        self._learned: list[int] = []
        self._num_bin_problem = 0
        self._num_bin_learned = 0
        self._num_tern_problem = 0
        self._num_tern_learned = 0
        self._var_inc = 1.0
        self._cla_inc = 1.0
        self._seen: list[bool] = [False]
        self._order: list[tuple[float, int]] = []
        #: Heap bookkeeping: how many entries each variable currently has in
        #: ``_order`` and the activity recorded by its freshest entry.  A
        #: variable is only re-pushed on backtrack when it has no entry or
        #: its activity changed since the last push — the maximum entry per
        #: unassigned variable therefore always carries the exact current
        #: activity (identical pick order to the push-always scheme, at a
        #: fraction of the heap churn).
        self._heap_count: list[int] = [0]
        self._heap_act: list[float] = [0.0]
        self._unsat = False
        #: Lifetime counters; per-call stats are computed from deltas so
        #: ``add_clause`` between calls never mutates a stats object a
        #: previous ``solve`` already returned.
        self._propagations = 0
        self._bin_propagations = 0
        self._blocker_skips = 0
        #: Lifetime count of ``add_clause`` submissions (the mapper uses the
        #: delta to prove retry rounds add only blocking clauses).
        self.clauses_added = 0

    @staticmethod
    def _to_internal(lit: int) -> int:
        var = abs(lit)
        return 2 * var if lit > 0 else 2 * var + 1

    @staticmethod
    def _to_external(lit: int) -> int:
        return -(lit >> 1) if lit & 1 else lit >> 1

    def _proof_add(self, internal_lits: Sequence[int]) -> None:
        self.proof.add([self._to_external(lit) for lit in internal_lits])  # type: ignore[attr-defined]

    def _proof_delete(self, internal_lits: Sequence[int]) -> None:
        self.proof.delete([self._to_external(lit) for lit in internal_lits])  # type: ignore[attr-defined]

    # ------------------------------------------------------------------
    # Clause management
    # ------------------------------------------------------------------
    def _simplify_external(self, literals: Sequence[int]) -> list[int] | None:
        """DIMACS literals -> simplified internal literals.

        Returns ``None`` when the clause is a tautology or already satisfied
        at the root level; otherwise the deduplicated internal literals with
        root-false ones dropped (possibly empty = root conflict).
        """
        seen: set[int] = set()
        lits: list[int] = []
        value = self._value
        for lit in literals:
            if lit == 0:
                raise ValueError("literal 0 is not allowed in a clause")
            var = lit if lit > 0 else -lit
            if var > self._nvars:
                self.ensure_vars(var)
                value = self._value
            internal = var + var if lit > 0 else var + var + 1
            if internal ^ 1 in seen:
                return None  # tautology
            if internal in seen:
                continue
            seen.add(internal)
            v = value[internal]
            if v == _TRUE:
                return None  # satisfied at the root level
            if v == _FALSE:
                continue  # root-falsified literal, drop it
            lits.append(internal)
        return lits

    def _resimplify_internal(self, lits: list[int]) -> list[int] | None:
        """Re-check internal literals after a root propagation sweep."""
        out: list[int] = []
        value = self._value
        for lit in lits:
            v = value[lit]
            if v == _TRUE:
                return None
            if v == _FALSE:
                continue
            out.append(lit)
        return out

    def _attach(self, lits: list[int], learned: bool = False, lbd: int = 0) -> int:
        """Attach a simplified clause of two or more literals.

        Binary clauses go to the implication lists and ternary clauses to
        the triple store (both return ref ``-1``); longer clauses are
        appended to the arena and watched on their first two literals, each
        watch carrying the *other* watched literal as its initial blocker.
        """
        length = len(lits)
        if length == 2:
            first, second = lits
            self._bins[first ^ 1].append(second)
            self._bins[second ^ 1].append(first)
            if learned:
                self._num_bin_learned += 1
            else:
                self._num_bin_problem += 1
            return -1
        if length == 3:
            first, second, third = lits
            self._terns[first ^ 1].append((second, third))
            self._terns[second ^ 1].append((first, third))
            self._terns[third ^ 1].append((first, second))
            if learned:
                self._num_tern_learned += 1
            else:
                self._num_tern_problem += 1
            return -1
        ref = len(self._c_offset)
        self._c_offset.append(len(self._arena))
        self._c_size.append(length)
        self._c_lbd.append(lbd)
        self._c_act.append(0.0)
        self._c_learned.append(learned)
        self._arena.extend(lits)
        first, second = lits[0], lits[1]
        self._watches[first ^ 1].append((ref, second))
        self._watches[second ^ 1].append((ref, first))
        if learned:
            self._learned.append(ref)
        else:
            self._clauses.append(ref)
        return ref

    def _attach_guarded_ternary(self, first: int, second: int, guard: int) -> bool:
        """Register ``(first, second, guard)`` in the guard-aware lists.

        Returns ``False`` (caller falls back to the plain ternary scheme)
        when either literal's guarded list is already bound to a different
        guard — possible only when a caller mixes constraint groups over
        shared variables, which the mapper's disjoint attempt blocks never
        do.
        """
        tern_guard = self._tern_guard
        slot_a = first ^ 1
        slot_b = second ^ 1
        for slot in (slot_a, slot_b):
            bound = tern_guard[slot]
            if bound != -1 and bound != guard:
                return False
        tern_guard[slot_a] = guard
        tern_guard[slot_b] = guard
        self._gterns[slot_a].append(second)
        self._gterns[slot_b].append(first)
        return True

    def _detach(self, ref: int) -> None:
        """Swap-remove the clause's two watch entries (no ``list.remove``)."""
        offset = self._c_offset[ref]
        arena = self._arena
        for watched in (arena[offset], arena[offset + 1]):
            watch_list = self._watches[watched ^ 1]
            for index, entry in enumerate(watch_list):
                if entry[0] == ref:
                    watch_list[index] = watch_list[-1]
                    watch_list.pop()
                    break

    def _compact_arena(self) -> None:
        """Rebuild the arena without dead clauses, remapping every ref.

        Refs appear in three places: the problem/learned clause lists, the
        watch lists, and ref-tagged reason codes of assigned variables
        (reasons are never deleted — locked clauses survive reduction — so
        every surviving reference has a remap target).  The ternary triple
        store never shrinks (ternary clauses are kept like binaries), so
        only arena refs are remapped.
        """
        old_arena = self._arena
        old_offset = self._c_offset
        old_size = self._c_size
        remap = [-1] * len(old_offset)
        new_arena: list[int] = []
        new_offset: list[int] = []
        new_size: list[int] = []
        new_lbd: list[int] = []
        new_act: list[float] = []
        new_learned: list[bool] = []
        for ref in range(len(old_offset)):
            size = old_size[ref]
            if size == 0:
                continue
            remap[ref] = len(new_offset)
            offset = old_offset[ref]
            new_offset.append(len(new_arena))
            new_size.append(size)
            new_lbd.append(self._c_lbd[ref])
            new_act.append(self._c_act[ref])
            new_learned.append(self._c_learned[ref])
            new_arena.extend(old_arena[offset:offset + size])
        self._arena = new_arena
        self._c_offset = new_offset
        self._c_size = new_size
        self._c_lbd = new_lbd
        self._c_act = new_act
        self._c_learned = new_learned
        self._garbage = 0
        self._clauses = [remap[ref] for ref in self._clauses]
        self._learned = [remap[ref] for ref in self._learned]
        for index, watch_list in enumerate(self._watches):
            self._watches[index] = [
                (remap[ref], blocker) for ref, blocker in watch_list
            ]
        reason = self._reason
        for lit in self._trail:
            var = lit >> 1
            code = reason[var]
            if code >= 0 and code & 3 == 0:
                reason[var] = remap[code >> 2] << 2

    def _clause_lits(self, ref: int) -> list[int]:
        """The literals of an arena clause (internal encoding)."""
        offset = self._c_offset[ref]
        return self._arena[offset:offset + self._c_size[ref]]

    # ------------------------------------------------------------------
    # Assignment and propagation
    # ------------------------------------------------------------------
    def _enqueue(self, lit: int, reason: int) -> bool:
        value = self._value
        current = value[lit]
        if current == _TRUE:
            return True
        if current == _FALSE:
            return False
        var = lit >> 1
        value[lit] = _TRUE
        value[lit ^ 1] = _FALSE
        self._level[var] = len(self._trail_lim)
        self._reason[var] = reason
        self._phase[var] = (lit & 1) == 0
        self._trail.append(lit)
        return True

    def _decision_level(self) -> int:
        return len(self._trail_lim)

    def _propagate(self) -> tuple[int, list[int]] | None:
        """Unit propagation; returns ``(ref, literals)`` of a conflicting
        clause (``ref == -1`` for a binary/ternary clause) or ``None``."""
        value = self._value
        watches = self._watches
        bins = self._bins
        terns = self._terns
        gterns = self._gterns
        tern_guard = self._tern_guard
        arena = self._arena
        offsets = self._c_offset
        sizes = self._c_size
        trail = self._trail
        level = self._level
        reason = self._reason
        phase = self._phase
        trail_lim_len = len(self._trail_lim)
        propagations = 0
        bin_propagations = 0
        blocker_skips = 0

        qhead = self._qhead
        conflict: tuple[int, list[int]] | None = None
        while conflict is None and qhead < len(trail):
            lit = trail[qhead]
            qhead += 1
            propagations += 1
            false_lit = lit ^ 1
            # Binary implications: one truth-value read per clause.
            implied_list = bins[lit]
            if implied_list:
                for implied in implied_list:
                    implied_value = value[implied]
                    if implied_value == _TRUE:
                        continue
                    if implied_value == _FALSE:
                        conflict = (-1, [implied, false_lit])
                        break
                    var = implied >> 1
                    value[implied] = _TRUE
                    value[implied ^ 1] = _FALSE
                    level[var] = trail_lim_len
                    reason[var] = (false_lit << 2) | 1
                    phase[var] = (implied & 1) == 0
                    trail.append(implied)
                    bin_propagations += 1
                if conflict is not None:
                    break
            # Ternary clauses: two truth-value reads, a static read-only
            # list (no watch migration, no list rebuild).
            tern_list = terns[lit]
            if tern_list:
                for other1, other2 in tern_list:
                    value1 = value[other1]
                    if value1 == _TRUE:
                        continue
                    value2 = value[other2]
                    if value2 == _TRUE:
                        continue
                    if value1 == _FALSE:
                        if value2 == _FALSE:
                            conflict = (-1, [other1, other2, false_lit])
                            break
                        var = other2 >> 1
                        value[other2] = _TRUE
                        value[other2 ^ 1] = _FALSE
                        level[var] = trail_lim_len
                        reason[var] = (other1 << 32) | (false_lit << 2) | 2
                        phase[var] = (other2 & 1) == 0
                        trail.append(other2)
                        bin_propagations += 1
                    elif value2 == _FALSE:
                        var = other1 >> 1
                        value[other1] = _TRUE
                        value[other1 ^ 1] = _FALSE
                        level[var] = trail_lim_len
                        reason[var] = (other2 << 32) | (false_lit << 2) | 2
                        phase[var] = (other1 & 1) == 0
                        trail.append(other1)
                        bin_propagations += 1
                if conflict is not None:
                    break
            # Guard-aware ternary clauses: while the attempt is live the
            # guard is false and every entry is effectively a binary
            # implication (one truth-value read); once the attempt is
            # retired the guard is root-true and the whole list is
            # dismissed with a single check.
            gtern_list = gterns[lit]
            if gtern_list:
                guard = tern_guard[lit]
                guard_value = value[guard]
                if guard_value == _FALSE:
                    for other in gtern_list:
                        other_value = value[other]
                        if other_value == _TRUE:
                            continue
                        if other_value == _FALSE:
                            conflict = (-1, [other, guard, false_lit])
                            break
                        var = other >> 1
                        value[other] = _TRUE
                        value[other ^ 1] = _FALSE
                        level[var] = trail_lim_len
                        reason[var] = (guard << 32) | (false_lit << 2) | 2
                        phase[var] = (other & 1) == 0
                        trail.append(other)
                        bin_propagations += 1
                    if conflict is not None:
                        break
                elif guard_value == _UNASSIGNED:
                    # Pre-assumption (root) propagation: the clauses can
                    # only force the guard itself, after which the whole
                    # group is satisfied.
                    for other in gtern_list:
                        if value[other] == _FALSE:
                            var = guard >> 1
                            value[guard] = _TRUE
                            value[guard ^ 1] = _FALSE
                            level[var] = trail_lim_len
                            reason[var] = (other << 32) | (false_lit << 2) | 2
                            phase[var] = (guard & 1) == 0
                            trail.append(guard)
                            bin_propagations += 1
                            break
            # Long clauses: (ref, blocker) watch pairs rebuilt with plain
            # appends — a true blocker keeps the entry with zero arena work.
            # The skip path is the hottest code in the solver, so it carries
            # no counters: skips are derived per literal as "kept entries
            # minus the (rare) non-skip keeps".
            watch_list = watches[lit]
            if not watch_list:
                continue
            # Clean-prefix scan: while blockers keep dismissing entries the
            # list needs no rebuild at all — the common case once the search
            # has satisfied most clauses along the current trail.
            count = len(watch_list)
            index = 0
            while index < count:
                if value[watch_list[index][1]] == _TRUE:
                    index += 1
                else:
                    break
            if index == count:
                blocker_skips += count
                continue
            kept: list[tuple[int, int]] = watch_list[:index]
            keep = kept.append
            nonskip_keeps = 0
            while index < count:
                entry = watch_list[index]
                index += 1
                blocker = entry[1]
                if value[blocker] == _TRUE:
                    keep(entry)
                    continue
                ref = entry[0]
                offset = offsets[ref]
                # Ensure the falsified literal sits at position offset+1.
                first = arena[offset]
                if first == false_lit:
                    first = arena[offset + 1]
                    arena[offset] = first
                    arena[offset + 1] = false_lit
                if value[first] == _TRUE:
                    # Satisfied by the other watch: keep, promote it to
                    # blocker so the next visit skips the arena entirely.
                    keep((ref, first))
                    nonskip_keeps += 1
                    continue
                # Search for a replacement watch.
                end = offset + sizes[ref]
                position = offset + 2
                found = False
                while position < end:
                    candidate = arena[position]
                    if value[candidate] != _FALSE:
                        arena[offset + 1] = candidate
                        arena[position] = false_lit
                        watches[candidate ^ 1].append((ref, first))
                        found = True
                        break
                    position += 1
                if found:
                    continue
                # Clause is unit or conflicting on ``first``.
                keep((ref, first))
                nonskip_keeps += 1
                if value[first] == _FALSE:
                    conflict = (ref, arena[offset:end])
                    blocker_skips += len(kept) - nonskip_keeps
                    # Keep the unvisited tail of the watch list verbatim.
                    kept.extend(watch_list[index:])
                    break
                var = first >> 1
                value[first] = _TRUE
                value[first ^ 1] = _FALSE
                level[var] = trail_lim_len
                reason[var] = ref << 2
                phase[var] = (first & 1) == 0
                trail.append(first)
            if conflict is None:
                blocker_skips += len(kept) - nonskip_keeps
            watches[lit] = kept

        self._qhead = len(trail) if conflict is not None else qhead
        self._propagations += propagations
        self._bin_propagations += bin_propagations
        self._blocker_skips += blocker_skips
        return conflict

    # ------------------------------------------------------------------
    # Conflict analysis
    # ------------------------------------------------------------------
    def _analyze(
        self, conflict_ref: int, conflict_lits: list[int]
    ) -> tuple[list[int], int, int]:
        """First-UIP conflict analysis.

        Returns the learned clause (internal literals, asserting literal
        first), the backtrack level and the clause's LBD.
        """
        learned: list[int] = [0]
        seen = self._seen
        level = self._level
        trail = self._trail
        activity = self._activity
        arena = self._arena
        offsets = self._c_offset
        sizes = self._c_size
        var_inc = self._var_inc
        counter = 0
        lit = -1
        trail_index = len(trail) - 1
        current_level = self._decision_level()

        # The resolution loop never materialises reason clauses: the
        # conflict clause arrives as a list, binary/ternary reasons unpack
        # from their tagged codes, and arena reasons are walked in place.
        others: tuple[int, ...] | list[int] = conflict_lits
        if conflict_ref >= 0 and self._c_learned[conflict_ref]:
            self._bump_clause(conflict_ref)
        while True:
            for other in others:
                var = other >> 1
                if seen[var] or level[var] == 0:
                    continue
                seen[var] = True
                # Inlined _bump_var (hot): only the rare rescale leaves the
                # fast path.
                bumped = activity[var] + var_inc
                activity[var] = bumped
                if bumped > 1e100:
                    self._rescale_var_activity()
                    var_inc = self._var_inc
                if level[var] == current_level:
                    counter += 1
                else:
                    learned.append(other)
            # Find the next literal on the trail to resolve on.
            while not seen[trail[trail_index] >> 1]:
                trail_index -= 1
            lit = trail[trail_index]
            trail_index -= 1
            var = lit >> 1
            seen[var] = False
            counter -= 1
            if counter == 0:
                break
            code = self._reason[var]
            assert code != _NO_REASON
            tag = code & 3
            if tag == 0:
                ref = code >> 2
                if self._c_learned[ref]:
                    self._bump_clause(ref)
                offset = offsets[ref]
                # Implied literal sits at ``offset``; resolve on the rest.
                others = arena[offset + 1:offset + sizes[ref]]
            elif tag == 1:
                others = (code >> 2,)
            else:
                others = (code >> _TERN_SHIFT, (code >> 2) & _TERN_MASK)
        learned[0] = lit ^ 1

        # Learned clause minimisation (MiniSat ccmin 2): a literal is
        # dropped when *every* resolution path from its reason terminates in
        # already-seen or root literals — shorter learned clauses mean
        # fewer watch visits on every future conflict.  ``_lit_redundant``
        # memoises successful sub-derivations by extending ``seen``;
        # ``to_clear`` collects everything to unmark afterwards.
        to_clear = list(learned)
        reduced = [learned[0]]
        if len(learned) > _DEEP_MINIMISE_THRESHOLD:
            abstract_levels = 0
            for other in learned[1:]:
                abstract_levels |= 1 << (level[other >> 1] & 31)
            for other in learned[1:]:
                if not self._lit_redundant(other, abstract_levels, to_clear):
                    reduced.append(other)
        else:
            for other in learned[1:]:
                if not self._redundant(other):
                    reduced.append(other)
        learned = reduced

        for other in to_clear:
            seen[other >> 1] = False

        if len(learned) == 1:
            backtrack_level = 0
        else:
            max_index = 1
            max_level = level[learned[1] >> 1]
            for position in range(2, len(learned)):
                lit_level = level[learned[position] >> 1]
                if lit_level > max_level:
                    max_level = lit_level
                    max_index = position
            learned[1], learned[max_index] = learned[max_index], learned[1]
            backtrack_level = max_level

        levels = {level[other >> 1] for other in learned}
        return learned, backtrack_level, len(levels)

    def _lit_redundant(self, lit: int, abstract_levels: int, to_clear: list[int]) -> bool:
        """Deep redundancy test for clause minimisation.

        Walks the implication graph below ``lit``: the literal is redundant
        when every path reaches a marked (``seen``) or root-level literal.
        Any literal whose decision level is outside ``abstract_levels``
        (a 32-bit Bloom filter of the learned clause's levels) can never be
        absorbed, so the walk fails fast.  Successful walks leave their
        marks in ``seen`` (memoisation); failed walks undo exactly the
        marks they added.
        """
        reason = self._reason
        seen = self._seen
        level = self._level
        arena = self._arena
        offsets = self._c_offset
        sizes = self._c_size
        stack = [lit]
        marked_from = len(to_clear)
        while stack:
            current = stack.pop()
            code = reason[current >> 1]
            if code == _NO_REASON:
                for undo in to_clear[marked_from:]:
                    seen[undo >> 1] = False
                del to_clear[marked_from:]
                return False
            tag = code & 3
            if tag == 0:
                ref = code >> 2
                offset = offsets[ref]
                others = arena[offset + 1:offset + sizes[ref]]
            elif tag == 1:
                others = (code >> 2,)
            else:
                others = (code >> _TERN_SHIFT, (code >> 2) & _TERN_MASK)
            failed = False
            for other in others:
                var = other >> 1
                if seen[var] or level[var] == 0:
                    continue
                if reason[var] == _NO_REASON or not (
                    abstract_levels & (1 << (level[var] & 31))
                ):
                    failed = True
                    break
                seen[var] = True
                to_clear.append(other)
                stack.append(other)
            if failed:
                for undo in to_clear[marked_from:]:
                    seen[undo >> 1] = False
                del to_clear[marked_from:]
                return False
        return True

    def _redundant(self, lit: int) -> bool:
        """Cheap (non-recursive) redundancy check for clause minimisation."""
        code = self._reason[lit >> 1]
        if code == _NO_REASON:
            return False
        seen = self._seen
        level = self._level
        this_var = lit >> 1
        tag = code & 3
        if tag == 0:
            ref = code >> 2
            offset = self._c_offset[ref]
            arena = self._arena
            for position in range(offset, offset + self._c_size[ref]):
                var = arena[position] >> 1
                if var == this_var:
                    continue
                if not seen[var] and level[var] != 0:
                    return False
            return True
        if tag == 1:
            other_var = (code >> 2) >> 1
            return seen[other_var] or level[other_var] == 0
        for other in (code >> _TERN_SHIFT, (code >> 2) & _TERN_MASK):
            var = other >> 1
            if not seen[var] and level[var] != 0:
                return False
        return True

    # ------------------------------------------------------------------
    # Activities
    # ------------------------------------------------------------------
    def _rescale_var_activity(self) -> None:
        for index in range(1, self._nvars + 1):
            self._activity[index] *= 1e-100
        for index in range(self._nvars + 1):
            self._heap_act[index] *= 1e-100
        self._order = [(-self._activity[var], var) for _, var in self._order]
        heapq.heapify(self._order)
        self._var_inc *= 1e-100

    def _decay_var_activity(self) -> None:
        self._var_inc /= self.var_decay

    def _bump_clause(self, ref: int) -> None:
        activities = self._c_act
        activities[ref] += self._cla_inc
        if activities[ref] > 1e20:
            for learned_ref in self._learned:
                activities[learned_ref] *= 1e-20
            self._cla_inc *= 1e-20

    def _decay_clause_activity(self) -> None:
        self._cla_inc /= self.clause_decay

    # ------------------------------------------------------------------
    # Backtracking and decisions
    # ------------------------------------------------------------------
    def _backtrack(self, level: int) -> None:
        if self._decision_level() <= level:
            return
        boundary = self._trail_lim[level]
        order = self._order
        value = self._value
        activity = self._activity
        reason = self._reason
        heap_count = self._heap_count
        heap_act = self._heap_act
        push = heapq.heappush
        for lit in self._trail[boundary:]:
            var = lit >> 1
            value[lit] = _UNASSIGNED
            value[lit ^ 1] = _UNASSIGNED
            reason[var] = _NO_REASON
            # Re-push only when the variable has no live heap entry or its
            # activity moved since the freshest push — the heap's maximum
            # entry per variable always carries the exact current activity.
            current = activity[var]
            if heap_count[var] == 0 or heap_act[var] != current:
                push(order, (-current, var))
                heap_count[var] += 1
                heap_act[var] = current
        del self._trail[boundary:]
        del self._trail_lim[level:]
        self._qhead = len(self._trail)

    def _pick_branch_literal(self) -> int | None:
        order = self._order
        value = self._value
        phase = self._phase
        heap_count = self._heap_count
        heap_act = self._heap_act
        while order:
            priority, var = heapq.heappop(order)
            heap_count[var] -= 1
            if -priority == heap_act[var]:
                # The variable's *freshest* entry was just consumed; any
                # remaining duplicates carry stale (lower) priorities, so
                # force the next backtrack to push a fresh exact entry.
                heap_act[var] = -1.0
            if value[var + var] == _UNASSIGNED:
                return var + var if phase[var] else var + var + 1
        # The heap drained past its stale entries.  Rebuild it once from the
        # unassigned variables (O(n) heapify) instead of linearly rescanning
        # the whole variable universe on every subsequent decision.
        activity = self._activity
        heap_act = self._heap_act
        rebuilt = []
        for var in range(1, self._nvars + 1):
            heap_count[var] = 0
            if value[var + var] == _UNASSIGNED:
                rebuilt.append((-activity[var], var))
                heap_count[var] = 1
                heap_act[var] = activity[var]
        if not rebuilt:
            return None
        heapq.heapify(rebuilt)
        self._order = rebuilt
        _, var = heapq.heappop(rebuilt)
        heap_count[var] -= 1
        return var + var if phase[var] else var + var + 1

    # ------------------------------------------------------------------
    # Clause database reduction
    # ------------------------------------------------------------------
    def _reduce_learned(self) -> None:
        lbds = self._c_lbd
        activities = self._c_act
        self._learned.sort(key=lambda ref: (lbds[ref], -activities[ref]))
        keep = len(self._learned) // 2
        removable = self._learned[keep:]
        del self._learned[keep:]
        locked: set[int] = set()
        reason = self._reason
        for lit in self._trail:
            code = reason[lit >> 1]
            if code >= 0 and code & 3 == 0:
                locked.add(code >> 2)
        sizes = self._c_size
        for ref in removable:
            if ref in locked or lbds[ref] <= 2:
                self._learned.append(ref)
                continue
            if self.proof is not None:
                self._proof_delete(self._clause_lits(ref))
            self._detach(ref)
            self._garbage += sizes[ref]
            sizes[ref] = 0
            self.stats.deleted_clauses += 1
        # Compact once dead slots exceed a quarter of the arena: rebuilding
        # watch refs is O(total watches), so earn it first.
        if self._garbage and self._garbage * 4 > len(self._arena):
            self._compact_arena()

    # ------------------------------------------------------------------
    # Main search loop
    # ------------------------------------------------------------------
    def _search(
        self,
        assumptions: list[int],
        conflict_limit: int | None,
        time_limit: float | None,
        start_time: float,
    ) -> str:
        restart_conflicts = self.restart_base * _luby(self.stats.restarts + 1)
        conflicts_since_restart = 0
        learned_limit = self.learned_limit_base
        # Learned ternaries that carry the negation of an assumption (the
        # mapper's attempt guards end up in every learned clause) join the
        # guard-aware lists too.
        assumption_guards = {lit ^ 1 for lit in assumptions}

        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.stats.conflicts += 1
                conflicts_since_restart += 1
                if self._decision_level() == 0:
                    self._unsat = True
                    if self.proof is not None:
                        self._proof_add(())
                    return "UNSAT"
                learned, backtrack_level, lbd = self._analyze(*conflict)
                if self.proof is not None:
                    self._proof_add(learned)
                self._backtrack(backtrack_level)
                length = len(learned)
                if length == 1:
                    self._enqueue(learned[0], _NO_REASON)
                else:
                    self.stats.learned_clauses += 1
                    if length == 2:
                        self._attach(learned, learned=True, lbd=lbd)
                        self._enqueue(learned[0], (learned[1] << 2) | 1)
                    elif length == 3:
                        guard = -1
                        if learned[1] in assumption_guards:
                            other, guard = learned[2], learned[1]
                        elif learned[2] in assumption_guards:
                            other, guard = learned[1], learned[2]
                        if guard != -1 and self._attach_guarded_ternary(
                            learned[0], other, guard
                        ):
                            self._num_tern_learned += 1
                        else:
                            self._attach(learned, learned=True, lbd=lbd)
                        self._enqueue(
                            learned[0],
                            (learned[1] << _TERN_SHIFT) | (learned[2] << 2) | 2,
                        )
                    else:
                        ref = self._attach(learned, learned=True, lbd=lbd)
                        self._enqueue(learned[0], ref << 2)
                self._decay_var_activity()
                self._decay_clause_activity()

                if conflict_limit is not None and self.stats.conflicts >= conflict_limit:
                    return "UNKNOWN"
                if time_limit is not None and (self.stats.conflicts & 127) == 0:
                    if time.perf_counter() - start_time > time_limit:
                        return "UNKNOWN"
                continue

            # No conflict: maybe restart / reduce / decide.
            if conflicts_since_restart >= restart_conflicts:
                self.stats.restarts += 1
                conflicts_since_restart = 0
                restart_conflicts = self.restart_base * _luby(self.stats.restarts + 1)
                # Restarts reshuffle *decisions*; the assumption prefix is
                # replayed identically every time, so keep its levels (and
                # their propagation closure) in place.
                self._backtrack(min(self._decision_level(), len(assumptions)))

            if len(self._learned) > learned_limit:
                self._reduce_learned()
                learned_limit += self.learned_limit_base // 2

            if time_limit is not None and time.perf_counter() - start_time > time_limit:
                return "UNKNOWN"

            # Assumption handling: replay any assumption not yet satisfied.
            next_decision: int | None = None
            level = self._decision_level()
            if level < len(assumptions):
                lit = assumptions[level]
                value = self._value[lit]
                if value == _FALSE:
                    # Unsatisfiable *under the assumptions* (the database
                    # itself stays consistent for future calls).  The proof
                    # records the negated cube: it is RUP with respect to
                    # the formula plus the learned clauses logged so far,
                    # and a checker invoked with the cube as extra units
                    # closes the trace with an empty-clause RUP check.
                    if self.proof is not None:
                        self._proof_add([a ^ 1 for a in assumptions])
                    return "UNSAT"
                if value == _TRUE:
                    self._trail_lim.append(len(self._trail))
                    continue
                next_decision = lit
            if next_decision is None:
                next_decision = self._pick_branch_literal()
                if next_decision is None:
                    return "SAT"

            self.stats.decisions += 1
            self._trail_lim.append(len(self._trail))
            self.stats.max_decision_level = max(
                self.stats.max_decision_level, self._decision_level()
            )
            self._enqueue(next_decision, _NO_REASON)

    # ------------------------------------------------------------------
    # Debug / test support
    # ------------------------------------------------------------------
    def debug_check_invariants(self) -> None:
        """Assert the arena/watch/implication-list invariants (tests, slow).

        * every live arena clause is watched exactly once from each of its
          first two literals, and nowhere else;
        * every watch entry refers to a live clause and the watched literal
          really is one of the clause's first two;
        * binary implication lists are symmetric (``b in bins[¬a]`` iff
          ``a in bins[¬b]``), with multiplicity;
        * every ternary triple is registered exactly once from each of its
          three literals, with consistent "other literal" pairs.
        """
        live = {
            ref for ref in range(len(self._c_offset)) if self._c_size[ref] > 0
        }
        expected: dict[tuple[int, int], int] = {}
        for ref in live:
            offset = self._c_offset[ref]
            for watched in (self._arena[offset], self._arena[offset + 1]):
                key = (ref, watched ^ 1)
                expected[key] = expected.get(key, 0) + 1
        found: dict[tuple[int, int], int] = {}
        for lit, watch_list in enumerate(self._watches):
            for ref, _blocker in watch_list:
                assert ref in live, f"watch entry for dead clause ref {ref}"
                key = (ref, lit)
                found[key] = found.get(key, 0) + 1
        assert expected == found, (
            f"watch tables diverge from arena: missing={expected.keys() - found.keys()} "
            f"spurious={found.keys() - expected.keys()}"
        )
        pair_counts: dict[tuple[int, int], int] = {}
        for lit, implied_list in enumerate(self._bins):
            for implied in implied_list:
                # Asserting ``lit`` implies ``implied``: clause (¬lit, implied).
                clause = tuple(sorted((lit ^ 1, implied)))
                pair_counts[clause] = pair_counts.get(clause, 0) + 1
        for clause, count in pair_counts.items():
            assert count % 2 == 0, f"asymmetric binary clause {clause}"
        tern_counts: dict[tuple[int, ...], int] = {}
        for lit, tern_list in enumerate(self._terns):
            for other1, other2 in tern_list:
                clause = tuple(sorted((lit ^ 1, other1, other2)))
                tern_counts[clause] = tern_counts.get(clause, 0) + 1
        for clause, count in tern_counts.items():
            assert count % 3 == 0, (
                f"ternary clause {clause} registered {count} times (want 3k)"
            )
        gtern_counts: dict[tuple[int, ...], int] = {}
        for lit, gtern_list in enumerate(self._gterns):
            guard = self._tern_guard[lit]
            assert guard != -1 or not gtern_list, (
                f"guarded entries without a guard on literal {lit}"
            )
            for other in gtern_list:
                clause = tuple(sorted((lit ^ 1, other, guard)))
                gtern_counts[clause] = gtern_counts.get(clause, 0) + 1
        for clause, count in gtern_counts.items():
            assert count % 2 == 0, (
                f"guarded ternary {clause} registered {count} times (want 2k)"
            )


def _luby(index: int) -> int:
    """The Luby restart sequence 1, 1, 2, 1, 1, 2, 4, …  (1-based index)."""
    if index < 1:
        raise ValueError(f"Luby index must be >= 1, got {index}")
    while True:
        k = index.bit_length()
        if index == (1 << k) - 1:
            return 1 << (k - 1)
        index = index - (1 << (k - 1)) + 1
