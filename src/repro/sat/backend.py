"""Pluggable incremental solver backends (the mapper's solving layer).

The mapping loop re-solves a closely related formula at every (II, slack)
attempt and after every register-allocation rejection.  Rebuilding a solver
for each call throws away learned clauses, VSIDS activities and saved phases,
so the mapper talks to the SAT engine through a :class:`SolverBackend`: a
persistent object that accumulates variables and clauses over its lifetime
and answers ``solve(assumptions=...)`` queries incrementally.

Two backends ship with the repository:

* ``"cdcl"`` — the production engine, a thin stats-keeping adapter over the
  incremental :class:`repro.sat.solver.CDCLSolver` (clause database, learned
  clauses, activities and phases persist across calls).
* ``"dpll"`` — the easy-to-audit reference oracle, replaying the accumulated
  clause set through :class:`repro.sat.dpll.DPLLSolver` on every call.  It is
  not incremental internally but implements the same protocol, which lets the
  test-suite cross-check the incremental engine under assumptions.

Alternative engines (a native solver binding, a remote solving service) plug
in through :func:`register_backend` and are selected by name via the mapper's
``MapperConfig.backend`` / the CLI's ``--backend`` flag.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from collections.abc import Callable, Iterable, Sequence
from typing import Protocol, runtime_checkable

from repro.sat.cnf import CNF
from repro.sat.dpll import DPLLSolver
from repro.sat.solver import CDCLSolver, SolverResult, SolverStats


@dataclass
class BackendStats:
    """Cumulative counters over the lifetime of one backend instance.

    Unlike :class:`repro.sat.solver.SolverStats` (which describes a single
    ``solve`` call) these accumulate across calls, which is what the mapper's
    reuse metrics are built from.
    """

    solve_calls: int = 0
    variables_added: int = 0
    clauses_added: int = 0
    conflicts: int = 0
    decisions: int = 0
    propagations: int = 0
    learned_clauses: int = 0
    solve_time: float = 0.0
    #: Learned clauses currently alive in the database — i.e. inference
    #: carried over into the *next* call (always 0 for non-learning engines).
    learned_in_db: int = 0


@runtime_checkable
class SolverBackend(Protocol):
    """Protocol every pluggable solving engine implements.

    A backend is a *persistent* solver: ``new_var`` and ``add_clause`` grow
    the formula monotonically, and every ``solve`` call decides the current
    clause set under the given assumption literals.  The variable/clause
    interface is deliberately identical to :class:`repro.sat.cnf.CNF` so the
    mapping encoder can emit straight into a live backend.

    ``freeze`` / ``retired_vars`` exist for engines that *simplify* the
    formula (``repro.sat.preprocess.PreprocessingBackend``): callers freeze
    variables they will reference after future solve calls, and
    ``retired_vars`` names variables the engine has eliminated.  Engines
    that never rewrite the formula implement them as no-ops, so the mapper
    can honour the contract without caring which engine it drives.
    """

    name: str
    stats: BackendStats

    @property
    def num_vars(self) -> int: ...

    def new_var(self) -> int: ...

    def new_vars(self, count: int) -> list[int]: ...

    def add_clause(self, literals: Sequence[int]) -> None: ...

    def add_clauses(
        self,
        clauses: Iterable[Sequence[int]],
        trusted: bool = False,
        guard: int | None = None,
    ) -> None: ...

    def freeze(self, variables: Iterable[int]) -> None: ...

    @property
    def retired_vars(self) -> frozenset[int]: ...

    def solve(
        self,
        assumptions: Sequence[int] = (),
        conflict_limit: int | None = None,
        time_limit: float | None = None,
        model_vars: Iterable[int] | None = None,
    ) -> SolverResult: ...


class CDCLBackend:
    """The production backend: incremental CDCL with cumulative stats."""

    name = "cdcl"

    def __init__(self, **solver_kwargs) -> None:
        self._solver = CDCLSolver(**solver_kwargs)
        self.stats = BackendStats()

    @property
    def num_vars(self) -> int:
        return self._solver.num_vars

    def new_var(self) -> int:
        self.stats.variables_added += 1
        return self._solver.new_var()

    def new_vars(self, count: int) -> list[int]:
        """Bulk variable allocation (one extend per per-variable array)."""
        self.stats.variables_added += count
        return self._solver.new_vars(count)

    def add_clause(self, literals: Sequence[int]) -> None:
        self.stats.clauses_added += 1
        self._solver.add_clause(literals)

    def add_clauses(
        self,
        clauses: Iterable[Sequence[int]],
        trusted: bool = False,
        guard: int | None = None,
    ) -> None:
        """Bulk clause ingestion (single backtrack, batched propagation).

        ``trusted`` promises intra-clause hygiene (no zero/duplicate/
        complementary literals) and lets the solver skip those checks;
        ``guard`` names the batch's shared selector-guard literal so
        guard-tailed ternary clauses reach the solver's guard-aware
        implication lists.
        """
        before = self._solver.clauses_added
        self._solver.add_clauses(clauses, trusted=trusted, guard=guard)
        self.stats.clauses_added += self._solver.clauses_added - before

    def freeze(self, variables: Iterable[int]) -> None:
        """No-op: this engine never eliminates variables."""

    @property
    def retired_vars(self) -> frozenset[int]:
        return frozenset()

    def solve(
        self,
        assumptions: Sequence[int] = (),
        conflict_limit: int | None = None,
        time_limit: float | None = None,
        model_vars: Iterable[int] | None = None,
    ) -> SolverResult:
        result = self._solver.solve(
            assumptions=assumptions,
            conflict_limit=conflict_limit,
            time_limit=time_limit,
            model_vars=model_vars,
        )
        call = result.stats
        self.stats.solve_calls += 1
        self.stats.conflicts += call.conflicts
        self.stats.decisions += call.decisions
        self.stats.propagations += call.propagations
        self.stats.learned_clauses += call.learned_clauses
        self.stats.solve_time += call.solve_time
        self.stats.learned_in_db = self._solver.num_learned
        return result


class DPLLBackend:
    """Reference-oracle backend: accumulated CNF replayed through DPLL.

    ``conflict_limit`` maps onto the DPLL decision budget and ``time_limit``
    onto the solver's deadline check; exhausting either is reported as
    ``"UNKNOWN"`` like the CDCL engine does.
    """

    name = "dpll"

    def __init__(self, random_seed: int | None = None, **_ignored) -> None:
        # The oracle is deterministic; the seed is accepted (and ignored) so
        # both backends can be built from the same mapper configuration.
        self._cnf = CNF()
        self.stats = BackendStats()

    @property
    def num_vars(self) -> int:
        return self._cnf.num_vars

    def new_var(self) -> int:
        self.stats.variables_added += 1
        return self._cnf.new_var()

    def new_vars(self, count: int) -> list[int]:
        self.stats.variables_added += count
        return self._cnf.new_vars(count)

    def add_clause(self, literals: Sequence[int]) -> None:
        self.stats.clauses_added += 1
        self._cnf.add_clause(literals)

    def add_clauses(
        self,
        clauses: Iterable[Sequence[int]],
        trusted: bool = False,
        guard: int | None = None,
    ) -> None:
        # ``trusted``/``guard`` are accepted for interface parity; the CNF
        # container's own (cheap) validation always runs.
        for clause in clauses:
            self.add_clause(clause)

    def freeze(self, variables: Iterable[int]) -> None:
        """No-op: this engine never eliminates variables."""

    @property
    def retired_vars(self) -> frozenset[int]:
        return frozenset()

    def solve(
        self,
        assumptions: Sequence[int] = (),
        conflict_limit: int | None = None,
        time_limit: float | None = None,
        model_vars: Iterable[int] | None = None,
    ) -> SolverResult:
        start = time.perf_counter()
        solver = DPLLSolver(max_decisions=conflict_limit)
        stats = SolverStats()
        try:
            model = solver.solve(
                self._cnf, assumptions=assumptions, time_limit=time_limit
            )
        except RuntimeError:  # decision or time budget exhausted
            status, model = "UNKNOWN", None
        else:
            status = "SAT" if model is not None else "UNSAT"
        if model is not None and model_vars is not None:
            model = {var: model.get(var, False) for var in model_vars}
        stats.decisions = solver.decisions
        stats.solve_time = time.perf_counter() - start
        self.stats.solve_calls += 1
        self.stats.decisions += stats.decisions
        self.stats.solve_time += stats.solve_time
        return SolverResult(status, model, stats)


BackendFactory = Callable[..., SolverBackend]

_REGISTRY: dict[str, BackendFactory] = {}


def register_backend(name: str, factory: BackendFactory) -> None:
    """Register a backend factory under ``name`` (overwrites silently)."""
    if not name:
        raise ValueError("backend name must be non-empty")
    _REGISTRY[name] = factory


def available_backends() -> list[str]:
    """Names of all registered backends, sorted."""
    return sorted(_REGISTRY)


def create_backend(name: str, **kwargs) -> SolverBackend:
    """Instantiate a registered backend by name."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown solver backend {name!r}; available: {available_backends()}"
        ) from None
    return factory(**kwargs)


register_backend("cdcl", CDCLBackend)
register_backend("dpll", DPLLBackend)
