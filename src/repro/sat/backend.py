"""Pluggable incremental solver backends (the mapper's solving layer).

The mapping loop re-solves a closely related formula at every (II, slack)
attempt and after every register-allocation rejection.  Rebuilding a solver
for each call throws away learned clauses, VSIDS activities and saved phases,
so the mapper talks to the SAT engine through a :class:`SolverBackend`: a
persistent object that accumulates variables and clauses over its lifetime
and answers ``solve(assumptions=...)`` queries incrementally.

Two backends ship with the repository:

* ``"cdcl"`` — the production engine, a thin stats-keeping adapter over the
  incremental :class:`repro.sat.solver.CDCLSolver` (clause database, learned
  clauses, activities and phases persist across calls).
* ``"dpll"`` — the easy-to-audit reference oracle, replaying the accumulated
  clause set through :class:`repro.sat.dpll.DPLLSolver` on every call.  It is
  not incremental internally but implements the same protocol, which lets the
  test-suite cross-check the incremental engine under assumptions.

Alternative engines (a native solver binding, a remote solving service) plug
in through :func:`register_backend` and are selected by name via the mapper's
``MapperConfig.backend`` / the CLI's ``--backend`` flag.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from collections.abc import Callable, Iterable, Sequence
from typing import Protocol, runtime_checkable

from repro.sat.cnf import CNF
from repro.sat.dpll import DPLLSolver
from repro.sat.drat import ProofLogger
from repro.sat.solver import CDCLSolver, SolverResult, SolverStats

#: Prefix selecting an arbitrary external solver binary: ``external:<path>``.
EXTERNAL_PREFIX = "external:"


class BackendUnavailableError(RuntimeError):
    """A requested solver backend exists but cannot run here.

    Raised by :func:`create_backend` (and the eager validators) when an
    external solver binary is absent, instead of failing deep inside
    ``subprocess`` at the first solve call.  Carries the missing binary name
    and an actionable install hint; the CLI surfaces it as a one-line error.
    """

    def __init__(self, binary: str, hint: str = "") -> None:
        self.binary = binary
        self.hint = hint
        message = f"solver backend unavailable: {binary!r} not found"
        if hint:
            message += f" ({hint})"
        super().__init__(message)


@dataclass
class BackendStats:
    """Cumulative counters over the lifetime of one backend instance.

    Unlike :class:`repro.sat.solver.SolverStats` (which describes a single
    ``solve`` call) these accumulate across calls, which is what the mapper's
    reuse metrics are built from.
    """

    solve_calls: int = 0
    variables_added: int = 0
    clauses_added: int = 0
    conflicts: int = 0
    decisions: int = 0
    propagations: int = 0
    learned_clauses: int = 0
    solve_time: float = 0.0
    #: Learned clauses currently alive in the database — i.e. inference
    #: carried over into the *next* call (always 0 for non-learning engines).
    learned_in_db: int = 0


@runtime_checkable
class SolverBackend(Protocol):
    """Protocol every pluggable solving engine implements.

    A backend is a *persistent* solver: ``new_var`` and ``add_clause`` grow
    the formula monotonically, and every ``solve`` call decides the current
    clause set under the given assumption literals.  The variable/clause
    interface is deliberately identical to :class:`repro.sat.cnf.CNF` so the
    mapping encoder can emit straight into a live backend.

    ``freeze`` / ``retired_vars`` exist for engines that *simplify* the
    formula (``repro.sat.preprocess.PreprocessingBackend``): callers freeze
    variables they will reference after future solve calls, and
    ``retired_vars`` names variables the engine has eliminated.  Engines
    that never rewrite the formula implement them as no-ops, so the mapper
    can honour the contract without caring which engine it drives.
    """

    name: str
    stats: BackendStats

    @property
    def num_vars(self) -> int:
        """Number of variables allocated so far."""
        ...

    def new_var(self) -> int:
        """Allocate and return one fresh variable."""
        ...

    def new_vars(self, count: int) -> list[int]:
        """Allocate ``count`` fresh variables in one call."""
        ...

    def add_clause(self, literals: Sequence[int]) -> None:
        """Add one clause to the persistent formula."""
        ...

    def add_clauses(
        self,
        clauses: Iterable[Sequence[int]],
        trusted: bool = False,
        guard: int | None = None,
    ) -> None:
        """Bulk clause ingestion; see :meth:`CDCLBackend.add_clauses`."""
        ...

    def freeze(self, variables: Iterable[int]) -> None:
        """Protect variables from elimination by simplifying engines."""
        ...

    @property
    def retired_vars(self) -> frozenset[int]:
        """Variables the engine has eliminated from the formula."""
        ...

    def solve(
        self,
        assumptions: Sequence[int] = (),
        conflict_limit: int | None = None,
        time_limit: float | None = None,
        model_vars: Iterable[int] | None = None,
    ) -> SolverResult:
        """Decide the current formula under the given assumption cube."""
        ...


class CDCLBackend:
    """The production backend: incremental CDCL with cumulative stats."""

    name = "cdcl"
    #: This engine populates solver-core counters (conflicts, propagations)
    #: that budget probing and bench rate metrics are derived from.
    instrumented = True

    def __init__(self, proof_path: str | None = None, **solver_kwargs) -> None:
        #: Optional DRAT trace (see :mod:`repro.sat.drat`): every learned
        #: clause and database deletion is logged, so an UNSAT answer ships
        #: with an independently checkable derivation.
        self.proof_path = proof_path
        self._proof = ProofLogger(proof_path) if proof_path is not None else None
        self._solver = CDCLSolver(proof=self._proof, **solver_kwargs)
        self.stats = BackendStats()

    def proof_digest(self) -> str | None:
        """Running SHA-256 over the DRAT trace emitted so far."""
        if self._proof is None or self._proof.additions == 0:
            return None
        return self._proof.digest()

    @property
    def num_vars(self) -> int:
        """Number of variables allocated in the live solver."""
        return self._solver.num_vars

    def new_var(self) -> int:
        """Allocate one fresh solver variable."""
        self.stats.variables_added += 1
        return self._solver.new_var()

    def new_vars(self, count: int) -> list[int]:
        """Bulk variable allocation (one extend per per-variable array)."""
        self.stats.variables_added += count
        return self._solver.new_vars(count)

    def add_clause(self, literals: Sequence[int]) -> None:
        """Add one clause to the incremental solver."""
        self.stats.clauses_added += 1
        self._solver.add_clause(literals)

    def add_clauses(
        self,
        clauses: Iterable[Sequence[int]],
        trusted: bool = False,
        guard: int | None = None,
    ) -> None:
        """Bulk clause ingestion (single backtrack, batched propagation).

        ``trusted`` promises intra-clause hygiene (no zero/duplicate/
        complementary literals) and lets the solver skip those checks;
        ``guard`` names the batch's shared selector-guard literal so
        guard-tailed ternary clauses reach the solver's guard-aware
        implication lists.
        """
        before = self._solver.clauses_added
        self._solver.add_clauses(clauses, trusted=trusted, guard=guard)
        self.stats.clauses_added += self._solver.clauses_added - before

    def freeze(self, variables: Iterable[int]) -> None:
        """No-op: this engine never eliminates variables."""

    @property
    def retired_vars(self) -> frozenset[int]:
        """Always empty: this engine never eliminates variables."""
        return frozenset()

    def solve(
        self,
        assumptions: Sequence[int] = (),
        conflict_limit: int | None = None,
        time_limit: float | None = None,
        model_vars: Iterable[int] | None = None,
    ) -> SolverResult:
        """Decide the formula under ``assumptions``, folding run stats."""
        result = self._solver.solve(
            assumptions=assumptions,
            conflict_limit=conflict_limit,
            time_limit=time_limit,
            model_vars=model_vars,
        )
        call = result.stats
        self.stats.solve_calls += 1
        self.stats.conflicts += call.conflicts
        self.stats.decisions += call.decisions
        self.stats.propagations += call.propagations
        self.stats.learned_clauses += call.learned_clauses
        self.stats.solve_time += call.solve_time
        self.stats.learned_in_db = self._solver.num_learned
        return result


class DPLLBackend:
    """Reference-oracle backend: accumulated CNF replayed through DPLL.

    ``conflict_limit`` maps onto the DPLL decision budget and ``time_limit``
    onto the solver's deadline check; exhausting either is reported as
    ``"UNKNOWN"`` like the CDCL engine does.
    """

    name = "dpll"
    #: The oracle reports decisions but no conflict/propagation counters,
    #: so budget probing and rate metrics must not be derived from it.
    instrumented = False

    def __init__(self, random_seed: int | None = None, **_ignored) -> None:
        # The oracle is deterministic; the seed is accepted (and ignored) so
        # both backends can be built from the same mapper configuration.
        self._cnf = CNF()
        self.stats = BackendStats()

    @property
    def num_vars(self) -> int:
        """Number of variables in the accumulated CNF."""
        return self._cnf.num_vars

    @property
    def accumulated_cnf(self) -> CNF:
        """The accumulated clause set (for DIMACS export)."""
        return self._cnf

    def new_var(self) -> int:
        """Allocate one fresh CNF variable."""
        self.stats.variables_added += 1
        return self._cnf.new_var()

    def new_vars(self, count: int) -> list[int]:
        """Allocate ``count`` fresh CNF variables."""
        self.stats.variables_added += count
        return self._cnf.new_vars(count)

    def add_clause(self, literals: Sequence[int]) -> None:
        """Append one clause to the accumulated CNF."""
        self.stats.clauses_added += 1
        self._cnf.add_clause(literals)

    def add_clauses(
        self,
        clauses: Iterable[Sequence[int]],
        trusted: bool = False,
        guard: int | None = None,
    ) -> None:
        """Append clauses one by one.

        ``trusted``/``guard`` are accepted for interface parity; the CNF
        container's own (cheap) validation always runs.
        """
        for clause in clauses:
            self.add_clause(clause)

    def freeze(self, variables: Iterable[int]) -> None:
        """No-op: this engine never eliminates variables."""

    @property
    def retired_vars(self) -> frozenset[int]:
        """Always empty: this engine never eliminates variables."""
        return frozenset()

    def solve(
        self,
        assumptions: Sequence[int] = (),
        conflict_limit: int | None = None,
        time_limit: float | None = None,
        model_vars: Iterable[int] | None = None,
    ) -> SolverResult:
        """Replay the accumulated CNF through the DPLL oracle."""
        start = time.perf_counter()
        solver = DPLLSolver(max_decisions=conflict_limit)
        stats = SolverStats()
        try:
            model = solver.solve(
                self._cnf, assumptions=assumptions, time_limit=time_limit
            )
        except RuntimeError:  # decision or time budget exhausted
            status, model = "UNKNOWN", None
        else:
            status = "SAT" if model is not None else "UNSAT"
        if model is not None and model_vars is not None:
            model = {var: model.get(var, False) for var in model_vars}
        stats.decisions = solver.decisions
        stats.solve_time = time.perf_counter() - start
        self.stats.solve_calls += 1
        self.stats.decisions += stats.decisions
        self.stats.solve_time += stats.solve_time
        return SolverResult(status, model, stats)


BackendFactory = Callable[..., SolverBackend]

_REGISTRY: dict[str, BackendFactory] = {}
_INSTRUMENTED: dict[str, bool] = {}


def register_backend(
    name: str, factory: BackendFactory, instrumented: bool = True
) -> None:
    """Register a backend factory under ``name`` (overwrites silently).

    ``instrumented=False`` marks engines that cannot report solver-core
    counters (external subprocesses, the DPLL oracle): the mapper skips
    conflict-budget probing for them and the perf harness reports ``null``
    rates instead of zeros that look like measurements.
    """
    if not name:
        raise ValueError("backend name must be non-empty")
    _REGISTRY[name] = factory
    _INSTRUMENTED[name] = instrumented


def available_backends() -> list[str]:
    """Names of all registered backends, sorted."""
    return sorted(_REGISTRY)


def backend_instrumented(name: str) -> bool:
    """Whether ``name`` populates conflict/propagation counters."""
    if name.startswith(EXTERNAL_PREFIX):
        return False
    return _INSTRUMENTED.get(name, True)


def create_backend(name: str, **kwargs) -> SolverBackend:
    """Instantiate a registered backend by name.

    ``external:<path>`` names bypass the registry and run the named binary
    through the subprocess layer.  Raises :class:`ValueError` for unknown
    names and :class:`BackendUnavailableError` when the backend is known but
    its binary is missing.
    """
    if name.startswith(EXTERNAL_PREFIX):
        from repro.sat import external  # local import: external imports us

        return external.create_external_backend(name, **kwargs)
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown solver backend {name!r}; available: {available_backends()}"
        ) from None
    return factory(**kwargs)


def validate_backend(name: str) -> None:
    """Eagerly check that ``name`` is known and runnable.

    Raises the same errors :func:`create_backend` would, without building a
    backend — the CLI and the portfolio lane validator call this up front so
    a missing binary fails as one clear line, not deep inside a worker.
    """
    from repro.sat import external  # local import: external imports us

    if external.is_external_backend(name):
        external.resolve_spec(name)
        return
    if name not in _REGISTRY:
        raise ValueError(
            f"unknown solver backend {name!r}; available: {available_backends()}"
        )


register_backend("cdcl", CDCLBackend)
register_backend("dpll", DPLLBackend, instrumented=False)
