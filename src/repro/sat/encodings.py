"""Cardinality encodings used by the SAT-MapIt CNF construction.

The mapping formulation needs two cardinality shapes:

* *exactly-one* over the literal set of each DFG node (constraint C1), and
* *at-most-one* over each (PE, cycle) slot (constraint C2).

Three at-most-one encodings are provided.  ``pairwise`` is the textbook
quadratic encoding the paper describes; ``sequential`` (Sinz 2005) and
``commander`` (Klieber & Kwon 2007) trade auxiliary variables for far fewer
clauses and are what the production mapper uses for large slots.
"""

from __future__ import annotations

from enum import Enum
from collections.abc import Sequence

from repro.sat.cnf import CNF


class AMOEncoding(str, Enum):
    """Available at-most-one encodings."""

    PAIRWISE = "pairwise"
    SEQUENTIAL = "sequential"
    COMMANDER = "commander"
    #: Pick per constraint group: pairwise up to ``AUTO_PAIRWISE_LIMIT``
    #: literals, sequential above.  On the CDCL core's implication lists a
    #: pairwise clause is a single-read implication with no auxiliary
    #: counter chain, which cuts unit-propagation volume several-fold; the
    #: quadratic clause count only overtakes that win on very wide groups.
    AUTO = "auto"


#: Group width where :data:`AMOEncoding.AUTO` switches from the quadratic
#: pairwise form to the sequential counter.  Chosen empirically on the
#: benchmark suite: pairwise still wins at ~176-literal groups (gsm on the
#: 4x4 mesh); the cap guards the very wide groups of large fabrics at high
#: slack where n^2 clause counts would dominate encode time and memory.
AUTO_PAIRWISE_LIMIT = 200


def at_least_one(cnf: CNF, literals: Sequence[int]) -> None:
    """Add a clause requiring at least one of ``literals`` to be true.

    An empty literal list adds the empty clause, making the formula UNSAT,
    which is the correct semantics (no way to satisfy "at least one of
    nothing").
    """
    cnf.add_clause(list(literals))


def at_most_one(
    cnf: CNF,
    literals: Sequence[int],
    encoding: AMOEncoding | str = AMOEncoding.SEQUENTIAL,
) -> None:
    """Constrain ``literals`` so that at most one of them is true."""
    encoding = AMOEncoding(encoding)
    lits = list(literals)
    if len(lits) <= 1:
        return
    if encoding is AMOEncoding.AUTO:
        encoding = (
            AMOEncoding.PAIRWISE
            if len(lits) <= AUTO_PAIRWISE_LIMIT
            else AMOEncoding.SEQUENTIAL
        )
    if encoding is AMOEncoding.PAIRWISE or len(lits) <= 4:
        _amo_pairwise(cnf, lits)
    elif encoding is AMOEncoding.SEQUENTIAL:
        _amo_sequential(cnf, lits)
    elif encoding is AMOEncoding.COMMANDER:
        _amo_commander(cnf, lits)
    else:  # pragma: no cover - enum exhausts the options
        raise ValueError(f"unknown at-most-one encoding: {encoding}")


def exactly_one(
    cnf: CNF,
    literals: Sequence[int],
    encoding: AMOEncoding | str = AMOEncoding.SEQUENTIAL,
) -> None:
    """Constrain ``literals`` so that exactly one of them is true."""
    at_least_one(cnf, literals)
    at_most_one(cnf, literals, encoding)


def _amo_pairwise(cnf: CNF, lits: list[int]) -> None:
    """Quadratic pairwise at-most-one: ``¬a ∨ ¬b`` for every pair."""
    fast = getattr(cnf, "add_pairwise_amo", None)
    if fast is not None:
        # The encoder's batching emitter runs the double loop internally —
        # one call instead of n*(n-1)/2 ``add_clause`` round-trips.
        fast(lits)
        return
    for i in range(len(lits)):
        for j in range(i + 1, len(lits)):
            cnf.add_clause([-lits[i], -lits[j]])


def _amo_sequential(cnf: CNF, lits: list[int]) -> None:
    """Sinz sequential counter at-most-one.

    Introduces ``n - 1`` auxiliary register variables ``s_i`` meaning "one of
    the first ``i + 1`` literals is true" and chains them, producing ``3n - 4``
    clauses.
    """
    n = len(lits)
    regs = cnf.new_vars(n - 1)
    cnf.add_clause([-lits[0], regs[0]])
    cnf.add_clause([-lits[n - 1], -regs[n - 2]])
    for i in range(1, n - 1):
        cnf.add_clause([-lits[i], regs[i]])
        cnf.add_clause([-regs[i - 1], regs[i]])
        cnf.add_clause([-lits[i], -regs[i - 1]])


def _amo_commander(cnf: CNF, lits: list[int], group_size: int = 4) -> None:
    """Commander-variable at-most-one, recursing over literal groups."""
    n = len(lits)
    if n <= group_size + 1:
        _amo_pairwise(cnf, lits)
        return
    commanders: list[int] = []
    for start in range(0, n, group_size):
        group = lits[start : start + group_size]
        commander = cnf.new_var()
        commanders.append(commander)
        # At most one literal of the group is true.
        _amo_pairwise(cnf, group)
        # commander is true iff some group literal is true.
        cnf.add_clause([-commander] + group)
        for lit in group:
            cnf.add_clause([commander, -lit])
    _amo_commander(cnf, commanders, group_size)


def count_true(literals: Sequence[int], assignment: dict[int, bool]) -> int:
    """Count how many of ``literals`` are true under ``assignment``.

    Utility for tests and for validating solver models against cardinality
    constraints.
    """
    total = 0
    for lit in literals:
        value = assignment.get(abs(lit), False)
        if value == (lit > 0):
            total += 1
    return total
