"""DIMACS escape hatch: named export/import of formulas and attempts.

The flat-arena CDCL solver tops out around half a million propagations per
second — three orders of magnitude below a system Kissat.  This module is the
first half of the external-solving layer (the second half is
:mod:`repro.sat.external`): it serialises any encoded mapping attempt, or a
live backend's accumulated clause set, to standard DIMACS CNF *without losing
the variable names*.  Names travel in two redundant forms:

* ``c varmap <var> <name>`` comment lines inside the ``.cnf`` file itself, so
  a lone file handed to a solver author stays self-describing; and
* a sidecar ``<file>.varmap.json`` next to the export, which survives solvers
  that strip comments and is cheap to load without scanning the CNF.

Assumption literals are appended as unit clauses (*unit cubes*) — the only
portable way to steer a non-incremental external solver — and recorded in a
``c cube`` comment so an import can split them back out of the clause list.
With the map and the cube intact, an external model can be projected back
onto mapper variables and replayed through ``MappingEncoding.decode`` and the
simulator exactly as if the internal solver had produced it.

Round-trip guarantee (property-tested): ``dumps`` output is a fixpoint, i.e.
``dumps(loads(dumps(doc))) == dumps(doc)``.
"""

from __future__ import annotations

import json
import os
import tempfile
from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

from repro.sat.cnf import CNF

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.core.encoder import MappingEncoding

__all__ = [
    "VarMap",
    "DimacsDocument",
    "dumps",
    "loads",
    "write_document",
    "read_document",
    "attempt_varmap",
    "export_encoding",
    "export_backend",
    "project_model",
]

_VARMAP_PREFIX = "c varmap "
_CUBE_PREFIX = "c cube "
SIDECAR_SUFFIX = ".varmap.json"


class VarMap:
    """A bidirectional map between DIMACS variables and symbolic names.

    Names are arbitrary non-empty strings without whitespace or newlines
    (they must survive a ``c varmap <var> <name>`` comment line).  Both
    directions are enforced injective: one name per variable, one variable
    per name.
    """

    def __init__(self, entries: Mapping[int, str] | None = None) -> None:
        self._by_var: dict[int, str] = {}
        self._by_name: dict[str, int] = {}
        if entries:
            for var, name in entries.items():
                self.bind(var, name)

    def bind(self, var: int, name: str) -> None:
        """Associate ``var`` with ``name`` (both must be unused)."""
        if var <= 0:
            raise ValueError(f"variables must be positive, got {var}")
        if not name or any(ch.isspace() for ch in name):
            raise ValueError(f"invalid varmap name {name!r}")
        if var in self._by_var and self._by_var[var] != name:
            raise ValueError(f"variable {var} already named {self._by_var[var]!r}")
        if name in self._by_name and self._by_name[name] != var:
            raise ValueError(f"name {name!r} already bound to {self._by_name[name]}")
        self._by_var[var] = name
        self._by_name[name] = var

    def name(self, var: int) -> str | None:
        return self._by_var.get(var)

    def var(self, name: str) -> int | None:
        return self._by_name.get(name)

    def __len__(self) -> int:
        return len(self._by_var)

    def __contains__(self, var: int) -> bool:
        return var in self._by_var

    def items(self) -> Iterable[tuple[int, str]]:
        return self._by_var.items()

    def comment_lines(self) -> list[str]:
        """``c varmap`` lines in ascending variable order (canonical form)."""
        return [
            f"{_VARMAP_PREFIX}{var} {name}"
            for var, name in sorted(self._by_var.items())
        ]

    # -- sidecar serialisation -----------------------------------------
    def to_json(self) -> str:
        payload = {str(var): name for var, name in sorted(self._by_var.items())}
        return json.dumps({"varmap": payload}, indent=0, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "VarMap":
        data = json.loads(text)
        entries = {int(var): str(name) for var, name in data["varmap"].items()}
        return cls(entries)


@dataclass
class DimacsDocument:
    """A CNF formula plus its variable names and assumption cube.

    ``cube`` holds assumption literals that were (or will be) appended to the
    serialised formula as unit clauses; they are *not* part of ``cnf``.
    ``comments`` carries free-form comment lines (without the leading
    ``c ``) that are reproduced verbatim at the top of the export.
    """

    cnf: CNF
    varmap: VarMap = field(default_factory=VarMap)
    cube: tuple[int, ...] = ()
    comments: tuple[str, ...] = ()

    @property
    def num_vars(self) -> int:
        return self.cnf.num_vars

    def named_model(self, model: Mapping[int, bool]) -> dict[str, bool]:
        """Project a ``{var: bool}`` model onto the mapped names."""
        out: dict[str, bool] = {}
        for var, name in self.varmap.items():
            if var in model:
                out[name] = model[var]
        return out


def dumps(doc: DimacsDocument) -> str:
    """Serialise ``doc`` to canonical DIMACS text.

    Canonical layout: free comments, varmap comments (ascending variable
    order), cube comment (if any), problem line, clauses, cube unit clauses.
    The declared clause count includes the cube units so the file is valid
    standalone input for any DIMACS solver.
    """
    lines: list[str] = [f"c {text}" if text else "c" for text in doc.comments]
    lines.extend(doc.varmap.comment_lines())
    if doc.cube:
        lines.append(_CUBE_PREFIX + " ".join(str(lit) for lit in doc.cube) + " 0")
    num_clauses = doc.cnf.num_clauses + len(doc.cube)
    lines.append(f"p cnf {doc.cnf.num_vars} {num_clauses}")
    for clause in doc.cnf.clauses:
        lines.append(" ".join(str(lit) for lit in clause) + " 0")
    for lit in doc.cube:
        lines.append(f"{lit} 0")
    return "\n".join(lines) + "\n"


def loads(text: str) -> DimacsDocument:
    """Parse DIMACS text (with optional varmap/cube comments) back.

    Cube literals recorded in the ``c cube`` comment are split back out of
    the trailing unit clauses, restoring the original formula/assumption
    separation; a file without the comment imports with an empty cube.
    """
    varmap = VarMap()
    cube: tuple[int, ...] = ()
    comments: list[str] = []
    body: list[str] = []
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if line.startswith(_VARMAP_PREFIX):
            parts = line[len(_VARMAP_PREFIX):].split()
            if len(parts) != 2:
                raise ValueError(f"malformed varmap line: {raw_line!r}")
            varmap.bind(int(parts[0]), parts[1])
        elif line.startswith(_CUBE_PREFIX):
            lits = [int(tok) for tok in line[len(_CUBE_PREFIX):].split()]
            if not lits or lits[-1] != 0 or 0 in lits[:-1]:
                raise ValueError(f"malformed cube line: {raw_line!r}")
            cube = tuple(lits[:-1])
        elif line == "c" or line.startswith("c ") or line == "c\t":
            comments.append(line[2:] if len(line) > 2 else "")
        else:
            body.append(raw_line)
    cnf = CNF.from_dimacs("\n".join(body) + "\n")
    if cube:
        clauses = cnf.clauses
        tail = clauses[len(clauses) - len(cube):]
        if tail != [(lit,) for lit in cube]:
            raise ValueError(
                "cube comment does not match trailing unit clauses"
            )
        trimmed = CNF(num_vars=cnf.num_vars)
        trimmed.add_clauses(clauses[: len(clauses) - len(cube)], trusted=True)
        cnf = trimmed
    return DimacsDocument(
        cnf=cnf, varmap=varmap, cube=cube, comments=tuple(comments)
    )


def write_document(doc: DimacsDocument, path: str | os.PathLike[str]) -> Path:
    """Write ``doc`` to ``path`` plus a ``.varmap.json`` sidecar.

    Both files are written atomically (temp file + rename) so a concurrent
    reader — e.g. an external solver watching a shared ``--dimacs-dir`` —
    never sees a torn file.  The sidecar is only produced for a non-empty
    varmap.  Returns the CNF path.
    """
    path = Path(path)
    _atomic_write(path, dumps(doc))
    if len(doc.varmap):
        _atomic_write(path.with_name(path.name + SIDECAR_SUFFIX), doc.varmap.to_json())
    return path


def read_document(path: str | os.PathLike[str]) -> DimacsDocument:
    """Read a DIMACS file; merge sidecar varmap entries when present."""
    path = Path(path)
    doc = loads(path.read_text())
    sidecar = path.with_name(path.name + SIDECAR_SUFFIX)
    if sidecar.exists():
        for var, name in VarMap.from_json(sidecar.read_text()).items():
            doc.varmap.bind(var, name)
    return doc


def _atomic_write(path: Path, content: str) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=path.name, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(content)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


# ---------------------------------------------------------------------------
# Mapper-attempt integration
# ---------------------------------------------------------------------------
def attempt_varmap(encoding: "MappingEncoding") -> VarMap:
    """Name the placement variables of an encoded attempt.

    Placement variables are named ``x[n<node>,p<pe>,c<cycle>,i<iter>]``; the
    attempt's selector literal (incremental mode) is named ``sel``.  Auxiliary
    cardinality variables stay anonymous — they carry no model information
    the mapper needs back.
    """
    varmap = VarMap()
    for (node, pe, cycle, iteration), var in encoding.variables.items():
        varmap.bind(var, f"x[n{node},p{pe},c{cycle},i{iteration}]")
    if encoding.selector is not None:
        varmap.bind(encoding.selector, "sel")
    return varmap


def export_encoding(
    encoding: "MappingEncoding",
    path: str | os.PathLike[str],
    assumptions: Sequence[int] = (),
    comments: Sequence[str] = (),
) -> Path:
    """Export a standalone encoded attempt (``encoding.cnf`` must exist).

    Incremental attempts emit clauses straight into a backend and keep no
    CNF copy; export those via :func:`export_backend` on the live backend
    instead.
    """
    if encoding.cnf is None:
        raise ValueError(
            "encoding has no standalone CNF (emitted into a backend); "
            "export the backend's accumulated clause set instead"
        )
    doc = DimacsDocument(
        cnf=encoding.cnf,
        varmap=attempt_varmap(encoding),
        cube=tuple(assumptions),
        comments=tuple(comments),
    )
    return write_document(doc, path)


def export_backend(
    backend: object,
    path: str | os.PathLike[str],
    assumptions: Sequence[int] = (),
    varmap: VarMap | None = None,
    comments: Sequence[str] = (),
) -> Path:
    """Export a live backend's accumulated clause set.

    Works for any backend exposing ``accumulated_cnf`` (the DPLL and
    subprocess backends do; the CDCL backend keeps clauses in its arena and
    does not replay them).
    """
    cnf = getattr(backend, "accumulated_cnf", None)
    if cnf is None:
        raise ValueError(
            f"backend {type(backend).__name__} does not expose an "
            "accumulated clause set (accumulated_cnf)"
        )
    doc = DimacsDocument(
        cnf=cnf,
        varmap=varmap or VarMap(),
        cube=tuple(assumptions),
        comments=tuple(comments),
    )
    return write_document(doc, path)


def project_model(
    doc: DimacsDocument, model: Mapping[int, bool]
) -> dict[int, bool]:
    """Restrict an external model to the document's named variables.

    The result maps the *original* variable numbers (which are the mapper's
    own, since export never renumbers) to booleans — exactly the shape
    ``MappingEncoding.decode`` consumes.  Unnamed auxiliary variables are
    dropped; named variables the solver left unassigned are defaulted to
    ``False`` (standard don't-care completion).
    """
    out: dict[int, bool] = {}
    for var, _name in doc.varmap.items():
        out[var] = bool(model.get(var, False))
    return out
