"""CNF formula container and DIMACS serialisation.

Variables are positive integers starting at 1; a literal is a non-zero integer
whose sign encodes polarity (DIMACS convention).  The :class:`CNF` class keeps
track of the number of variables allocated so far, supports allocating fresh
auxiliary variables (needed by the sequential/commander cardinality
encodings), and can round-trip to the DIMACS CNF text format.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from typing import TextIO

Clause = tuple[int, ...]


class CNF:
    """A formula in conjunctive normal form.

    The container deliberately stays close to the DIMACS data model so that it
    can be handed to any SAT solver: a number of variables and a list of
    clauses, each clause a tuple of non-zero integer literals.
    """

    def __init__(
        self,
        num_vars: int = 0,
        clauses: Iterable[Sequence[int]] | None = None,
        dedup: bool = False,
    ) -> None:
        """``dedup=True`` drops exact duplicate clauses at ingest (the count
        is kept in :attr:`num_duplicates_dropped`); mechanically generated
        formulas routinely contain them and they only slow propagation."""
        if num_vars < 0:
            raise ValueError(f"num_vars must be non-negative, got {num_vars}")
        self._num_vars = num_vars
        self._clauses: list[Clause] = []
        self._seen: set[Clause] | None = set() if dedup else None
        self._duplicates_dropped = 0
        if clauses is not None:
            for clause in clauses:
                self.add_clause(clause)

    # ------------------------------------------------------------------
    # Variable management
    # ------------------------------------------------------------------
    @property
    def num_vars(self) -> int:
        """Number of variables allocated in the formula."""
        return self._num_vars

    @property
    def num_clauses(self) -> int:
        """Number of clauses currently in the formula."""
        return len(self._clauses)

    @property
    def clauses(self) -> list[Clause]:
        """The clause list (shared reference, do not mutate)."""
        return self._clauses

    @property
    def num_duplicates_dropped(self) -> int:
        """Exact duplicate clauses dropped at ingest (``dedup=True`` only)."""
        return self._duplicates_dropped

    def new_var(self) -> int:
        """Allocate and return a fresh variable."""
        self._num_vars += 1
        return self._num_vars

    def new_vars(self, count: int) -> list[int]:
        """Allocate ``count`` fresh variables and return them in order."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        return [self.new_var() for _ in range(count)]

    def ensure_var(self, var: int) -> None:
        """Grow the variable count so that ``var`` is a valid variable."""
        if var <= 0:
            raise ValueError(f"variables must be positive, got {var}")
        if var > self._num_vars:
            self._num_vars = var

    # ------------------------------------------------------------------
    # Clause management
    # ------------------------------------------------------------------
    def add_clause(self, literals: Sequence[int]) -> None:
        """Add a clause given as a sequence of non-zero literals.

        Duplicate literals are removed.  A clause containing both a literal
        and its negation is a tautology and is silently dropped.  An empty
        clause is accepted (it makes the formula trivially unsatisfiable).
        """
        seen: set[int] = set()
        out: list[int] = []
        tautology = False
        for lit in literals:
            if lit == 0:
                raise ValueError("literal 0 is not allowed in a clause")
            self.ensure_var(abs(lit))
            if -lit in seen:
                tautology = True
                continue
            if lit in seen:
                continue
            seen.add(lit)
            out.append(lit)
        if tautology:
            return
        if self._seen is not None:
            key = tuple(sorted(out))
            if key in self._seen:
                self._duplicates_dropped += 1
                return
            self._seen.add(key)
        self._clauses.append(tuple(out))

    def add_clauses(
        self,
        clauses: Iterable[Sequence[int]],
        trusted: bool = False,
        guard: int | None = None,
    ) -> None:
        """Add several clauses.

        ``trusted`` and ``guard`` are part of the shared bulk-ingestion
        interface (see :class:`repro.sat.backend.SolverBackend`); the CNF
        container's own validation is cheap and always runs.
        """
        for clause in clauses:
            self.add_clause(clause)

    def extend(self, other: "CNF") -> None:
        """Append all clauses of ``other`` (variables are shared, not renamed)."""
        self.ensure_var(max(other.num_vars, 1)) if other.num_vars else None
        for clause in other.clauses:
            for lit in clause:
                self.ensure_var(abs(lit))
            if self._seen is not None:
                key = tuple(sorted(clause))
                if key in self._seen:
                    self._duplicates_dropped += 1
                    continue
                self._seen.add(key)
            self._clauses.append(clause)

    def __iter__(self) -> Iterator[Clause]:
        return iter(self._clauses)

    def __len__(self) -> int:
        return len(self._clauses)

    def __repr__(self) -> str:
        return f"CNF(num_vars={self._num_vars}, num_clauses={len(self._clauses)})"

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(self, assignment: dict[int, bool]) -> bool:
        """Return ``True`` iff ``assignment`` satisfies every clause.

        ``assignment`` maps variables to booleans; unassigned variables make a
        clause undecidable and count as unsatisfied.
        """
        for clause in self._clauses:
            if not clause_satisfied(clause, assignment):
                return False
        return True

    # ------------------------------------------------------------------
    # DIMACS I/O
    # ------------------------------------------------------------------
    def to_dimacs(self) -> str:
        """Serialise the formula to a DIMACS CNF string."""
        lines = [f"p cnf {self._num_vars} {len(self._clauses)}"]
        for clause in self._clauses:
            lines.append(" ".join(str(lit) for lit in clause) + " 0")
        return "\n".join(lines) + "\n"

    def write_dimacs(self, stream: TextIO) -> None:
        """Write the formula in DIMACS format to a text stream."""
        stream.write(self.to_dimacs())

    @classmethod
    def from_dimacs(cls, text: str) -> "CNF":
        """Parse a DIMACS CNF string into a :class:`CNF`."""
        num_vars = 0
        declared_clauses: int | None = None
        cnf = cls()
        pending: list[int] = []
        for raw_line in text.splitlines():
            line = raw_line.strip()
            if not line or line.startswith("c") or line.startswith("%"):
                continue
            if line.startswith("p"):
                parts = line.split()
                if len(parts) != 4 or parts[1] != "cnf":
                    raise ValueError(f"malformed DIMACS problem line: {line!r}")
                num_vars = int(parts[2])
                declared_clauses = int(parts[3])
                continue
            for token in line.split():
                lit = int(token)
                if lit == 0:
                    cnf.add_clause(pending)
                    pending = []
                else:
                    pending.append(lit)
        if pending:
            cnf.add_clause(pending)
        if num_vars:
            cnf.ensure_var(num_vars)
        if declared_clauses is not None and declared_clauses != cnf.num_clauses:
            # Tautologies are dropped on load, so fewer clauses than declared
            # is acceptable; more clauses indicates a malformed file.
            if cnf.num_clauses > declared_clauses:
                raise ValueError(
                    f"DIMACS header declares {declared_clauses} clauses, "
                    f"found {cnf.num_clauses}"
                )
        return cnf

    @classmethod
    def read_dimacs(cls, stream: TextIO) -> "CNF":
        """Read a DIMACS CNF formula from a text stream."""
        return cls.from_dimacs(stream.read())


def clause_satisfied(clause: Sequence[int], assignment: dict[int, bool]) -> bool:
    """Return ``True`` iff ``clause`` is satisfied by ``assignment``."""
    for lit in clause:
        value = assignment.get(abs(lit))
        if value is None:
            continue
        if value == (lit > 0):
            return True
    return False
