"""Bundled DIMACS solver executable: ``python -m repro.sat.pysolver``.

A tiny competition-style front end over the repo's own
:class:`repro.sat.solver.CDCLSolver`.  It exists so the external-solving
pipeline (DIMACS export → subprocess → stdout parse → DRAT proof check) is
exercisable on any machine with just this repository — no system Kissat or
MiniSat required.  The ``"subprocess"`` backend name resolves to it, CI's
external smoke falls back to it, and the perf harness uses it for the
``cdcl``-vs-external twin cases when no faster binary is installed.

Interface (the "competition" dialect :mod:`repro.sat.external` speaks):

.. code-block:: text

    python -m repro.sat.pysolver [options] FILE.cnf [PROOF.drat]

    exit 10  s SATISFIABLE   + "v " model lines (terminated by "v 0")
    exit 20  s UNSATISFIABLE (DRAT trace written to PROOF.drat when given)
    exit 0   s UNKNOWN       (a budget ran out)

Options: ``--conflicts=N`` caps the conflict budget, ``--seed=N`` seeds the
solver; ``-q``/``--no-binary`` and any other flag are accepted and ignored
(real solvers tolerate their common flags, so the stub does too).
"""

from __future__ import annotations

import sys

from repro.sat.cnf import CNF
from repro.sat.drat import ProofLogger
from repro.sat.solver import CDCLSolver

_MODEL_LITS_PER_LINE = 20


def main(argv: list[str] | None = None) -> int:
    """Solve a DIMACS file and print a competition-format answer."""
    argv = sys.argv[1:] if argv is None else argv
    conflicts: int | None = None
    seed: int | None = None
    paths: list[str] = []
    for arg in argv:
        if arg.startswith("--conflicts="):
            conflicts = int(arg.split("=", 1)[1])
        elif arg.startswith("--seed="):
            seed = int(arg.split("=", 1)[1])
        elif arg.startswith("-"):
            continue  # tolerated, like real solvers tolerate their flags
        else:
            paths.append(arg)
    if not paths or len(paths) > 2:
        print("usage: pysolver [options] FILE.cnf [PROOF.drat]", file=sys.stderr)
        return 2

    try:
        cnf = CNF.from_dimacs(open(paths[0]).read())
    except (OSError, ValueError) as exc:
        print(f"c error reading {paths[0]}: {exc}", file=sys.stderr)
        return 2

    proof = ProofLogger(paths[1]) if len(paths) == 2 else None
    solver = CDCLSolver(random_seed=seed, proof=proof)
    result = solver.solve(cnf, conflict_limit=conflicts)
    if proof is not None:
        proof.close()

    print(f"c repro pysolver ({solver.num_vars} vars, {cnf.num_clauses} clauses)")
    if result.is_sat:
        print("s SATISFIABLE")
        assert result.model is not None
        lits = [
            var if result.model.get(var, False) else -var
            for var in range(1, cnf.num_vars + 1)
        ]
        for index in range(0, len(lits), _MODEL_LITS_PER_LINE):
            chunk = lits[index:index + _MODEL_LITS_PER_LINE]
            print("v " + " ".join(str(lit) for lit in chunk))
        print("v 0")
        return 10
    if result.is_unsat:
        print("s UNSATISFIABLE")
        return 20
    print("s UNKNOWN")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
