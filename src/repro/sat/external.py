"""External SAT solvers as :class:`SolverBackend` implementations.

The pure-Python propagation ceiling (~0.5M props/s, BENCH_solver.json) is the
repo's hard performance limit; a system Kissat propagates three orders of
magnitude faster.  :class:`SubprocessBackend` breaks that ceiling without
giving up the mapper's incremental interface:

* **Persistent formula accumulation** — clauses accumulate in a
  :class:`~repro.sat.cnf.CNF` exactly like the DPLL oracle backend; the
  serialised clause lines are cached so each solve call re-exports only the
  delta (new clauses are appended to the cached body, never re-serialised).
* **Incremental-ish solving** — external solvers are one-shot, so each
  ``solve(assumptions=...)`` call appends the assumption literals as *unit
  cubes* to the export.  Selector-guarded attempt groups therefore work
  unchanged: retiring a group means its selector's negation rides along as a
  unit, exactly as it would as an internal assumption.
* **Timeout/kill discipline** — solvers run in their own process group
  (POSIX) and a blown ``time_limit`` SIGKILLs the whole group, so a solver
  that forks helpers cannot outlive the attempt; the call reports
  ``"UNKNOWN"`` like an exhausted internal budget does.
* **Proofs** — solvers that emit DRAT get a proof path appended to their
  command line; UNSAT results record the trace path and its SHA-256 digest
  (see :mod:`repro.sat.drat`).

Registry names: ``kissat`` / ``cadical`` / ``minisat`` resolve system
binaries (raising :class:`BackendUnavailableError` with an install hint when
absent), ``subprocess`` is the always-available bundled
:mod:`repro.sat.pysolver`, and ``external:<path>`` runs an arbitrary
competition-interface binary (``solver FILE.cnf [PROOF.drat]``, ``s``/``v``
stdout lines, exit code 10/20).

External engines are **not instrumented**: they cannot report conflict or
propagation counters, so ``BackendStats`` keeps those at zero, the mapper
skips conflict-budget probing for them, and the perf harness reports ``null``
rates instead of garbage.
"""

from __future__ import annotations

import errno
import hashlib
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass, replace
from collections.abc import Iterable, Sequence
from pathlib import Path

from repro.sat.backend import (
    BackendStats,
    BackendUnavailableError,
    register_backend,
)
from repro.sat.cnf import CNF
from repro.sat.drat import check_proof, proof_digest
from repro.sat.solver import SolverResult, SolverStats

__all__ = [
    "ExternalSolverError",
    "ExternalSolverSpec",
    "SubprocessBackend",
    "KNOWN_SOLVERS",
    "EXTERNAL_PREFIX",
    "BUNDLED_BACKEND",
    "is_external_backend",
    "resolve_spec",
    "ensure_available",
]

EXTERNAL_PREFIX = "external:"
#: The bundled pure-Python solver (always available; used as the CI-free
#: stand-in for a system solver).
BUNDLED_BACKEND = "subprocess"

#: Transient launch-failure handling: a loaded machine can refuse a fork
#: (ENOMEM / EAGAIN) or OOM-kill a just-started solver, and neither says
#: anything about the binary itself — unlike ENOENT, which no amount of
#: retrying fixes.  Such failures are retried with bounded exponential
#: backoff before :class:`BackendUnavailableError` is raised; the error
#: message reports how many attempts were burned.
LAUNCH_RETRIES = 2
LAUNCH_BACKOFF = 0.05
_TRANSIENT_LAUNCH_ERRNOS = frozenset({errno.ENOMEM, errno.EAGAIN})


class ExternalSolverError(RuntimeError):
    """An external solver behaved unexpectedly (bad exit, unparseable
    output, or an emitted proof that failed verification)."""


@dataclass(frozen=True)
class ExternalSolverSpec:
    """How to drive one external solver binary.

    ``dialect`` selects the I/O convention: ``"competition"`` solvers read
    the CNF path (plus optional proof path), print ``s ``/``v `` lines and
    exit 10/20; ``"minisat"`` solvers take an extra result-file argument and
    write ``SAT``/``UNSAT`` plus the model there.
    """

    name: str
    command: tuple[str, ...]
    dialect: str = "competition"
    quiet_flags: tuple[str, ...] = ()
    #: Format string for a conflict budget (e.g. ``"--conflicts={}"``);
    #: ``None`` means the solver takes no budget and probing is pointless.
    conflict_flag: str | None = None
    supports_proof: bool = False
    #: Extra flags required when a proof is requested (e.g. Kissat needs
    #: ``--no-binary`` to emit textual DRAT our checker can read).
    proof_flags: tuple[str, ...] = ()
    install_hint: str = ""


#: Solvers resolvable by bare registry name.  ``command`` is filled in at
#: resolution time from ``shutil.which``.
KNOWN_SOLVERS: dict[str, ExternalSolverSpec] = {
    "kissat": ExternalSolverSpec(
        name="kissat",
        command=(),
        dialect="competition",
        quiet_flags=("-q",),
        conflict_flag="--conflicts={}",
        supports_proof=True,
        proof_flags=("--no-binary",),
        install_hint="apt-get install kissat",
    ),
    "cadical": ExternalSolverSpec(
        name="cadical",
        command=(),
        dialect="competition",
        quiet_flags=("-q",),
        supports_proof=True,
        proof_flags=("--no-binary",),
        install_hint="apt-get install cadical",
    ),
    "minisat": ExternalSolverSpec(
        name="minisat",
        command=(),
        dialect="minisat",
        quiet_flags=("-verb=0",),
        install_hint="apt-get install minisat",
    ),
}


def _bundled_spec() -> ExternalSolverSpec:
    return ExternalSolverSpec(
        name=BUNDLED_BACKEND,
        command=(sys.executable, "-m", "repro.sat.pysolver"),
        dialect="competition",
        conflict_flag="--conflicts={}",
        supports_proof=True,
    )


def is_external_backend(name: str) -> bool:
    """True for names the subprocess layer owns (binary or bundled)."""
    return (
        name == BUNDLED_BACKEND
        or name in KNOWN_SOLVERS
        or name.startswith(EXTERNAL_PREFIX)
    )


def resolve_spec(name: str) -> ExternalSolverSpec:
    """Resolve a backend name to a runnable spec.

    Raises :class:`BackendUnavailableError` (with an install hint) when the
    named binary is not on PATH / not executable, and :class:`ValueError`
    for names the external layer does not recognise.
    """
    if name == BUNDLED_BACKEND:
        return _bundled_spec()
    if name.startswith(EXTERNAL_PREFIX):
        target = name[len(EXTERNAL_PREFIX):]
        if not target:
            raise ValueError("external: backend needs a path, e.g. external:/usr/bin/kissat")
        resolved = shutil.which(target)
        if resolved is None and os.path.isfile(target) and os.access(target, os.X_OK):
            resolved = target
        if resolved is None:
            raise BackendUnavailableError(
                binary=target,
                hint="point external:<path> at an executable competition-interface solver",
            )
        return ExternalSolverSpec(
            name=name,
            command=(resolved,),
            dialect="competition",
            supports_proof=True,
        )
    spec = KNOWN_SOLVERS.get(name)
    if spec is None:
        raise ValueError(f"unknown external solver backend {name!r}")
    binary = shutil.which(name)
    if binary is None:
        raise BackendUnavailableError(binary=name, hint=spec.install_hint)
    return replace(spec, command=(binary,))


def ensure_available(name: str) -> None:
    """Validate an external backend name eagerly (no-op for internal ones).

    Lets callers that fan work out (portfolio lanes, sweep workers) fail
    with one clear error up front instead of per-worker deep in
    ``subprocess``.
    """
    if is_external_backend(name):
        resolve_spec(name)


def _sanitize_tag(tag: str) -> str:
    return "".join(ch if ch.isalnum() or ch in "-_.@" else "_" for ch in tag)


class SubprocessBackend:
    """Drive an external DIMACS solver through the backend protocol."""

    instrumented = False

    def __init__(
        self,
        spec: ExternalSolverSpec,
        *,
        dimacs_dir: str | os.PathLike[str] | None = None,
        reuse_dimacs: bool = False,
        proof: bool = False,
        verify_proofs: bool = False,
        tag: str | None = None,
        random_seed: int | None = None,
        **_ignored: object,
    ) -> None:
        if proof and not spec.supports_proof:
            raise ValueError(
                f"backend {spec.name!r} does not support DRAT proof emission"
            )
        self.spec = spec
        self.name = spec.name
        self.stats = BackendStats()
        self._cnf = CNF()
        self._lines: list[str] = []  # serialised clause cache (delta export)
        self._dimacs_dir = Path(dimacs_dir) if dimacs_dir is not None else None
        self._reuse = reuse_dimacs
        self._proof = proof
        self._verify = verify_proofs
        self._tag = _sanitize_tag(tag or spec.name)
        self._seed = random_seed
        self._tmpdir: tempfile.TemporaryDirectory[str] | None = None
        self._solve_index = 0
        #: Artefacts of the most recent solve call.
        self.last_dimacs_path: str | None = None
        self.last_proof_path: str | None = None
        self.proof_path: str | None = None
        self._last_proof_digest: str | None = None

    # -- formula accumulation (CNF-compatible surface) ------------------
    @property
    def num_vars(self) -> int:
        """Number of variables in the accumulated CNF."""
        return self._cnf.num_vars

    @property
    def accumulated_cnf(self) -> CNF:
        """The accumulated clause set (shared reference, do not mutate)."""
        return self._cnf

    def new_var(self) -> int:
        """Allocate one fresh CNF variable."""
        self.stats.variables_added += 1
        return self._cnf.new_var()

    def new_vars(self, count: int) -> list[int]:
        """Allocate ``count`` fresh CNF variables."""
        self.stats.variables_added += count
        return self._cnf.new_vars(count)

    def add_clause(self, literals: Sequence[int]) -> None:
        """Append one clause to the accumulated CNF."""
        self.stats.clauses_added += 1
        self._cnf.add_clause(literals)

    def add_clauses(
        self,
        clauses: Iterable[Sequence[int]],
        trusted: bool = False,
        guard: int | None = None,
    ) -> None:
        """Append clauses one by one (``trusted``/``guard`` are parity-only)."""
        for clause in clauses:
            self.add_clause(clause)

    def freeze(self, variables: Iterable[int]) -> None:
        """No-op: the formula is exported verbatim, never simplified."""

    @property
    def retired_vars(self) -> frozenset[int]:
        """Always empty: the export layer never eliminates variables."""
        return frozenset()

    def proof_digest(self) -> str | None:
        """SHA-256 digest of the most recent UNSAT proof, if any."""
        return self._last_proof_digest

    # -- solving --------------------------------------------------------
    def solve(
        self,
        assumptions: Sequence[int] = (),
        conflict_limit: int | None = None,
        time_limit: float | None = None,
        model_vars: Iterable[int] | None = None,
    ) -> SolverResult:
        """Export formula + cube as DIMACS and run the external binary."""
        start = time.perf_counter()
        cube = [int(lit) for lit in assumptions]
        cnf_path = self._export(cube)
        proof_path = (
            cnf_path.with_suffix(".drat") if self._proof else None
        )
        argv = self._argv(cnf_path, proof_path, conflict_limit)
        result_path = (
            cnf_path.with_suffix(".out") if self.spec.dialect == "minisat" else None
        )

        returncode, stdout, stderr = self._run(argv, time_limit)
        elapsed = time.perf_counter() - start
        call_stats = SolverStats()
        call_stats.solve_time = elapsed
        self.stats.solve_calls += 1
        self.stats.solve_time += elapsed
        self.last_dimacs_path = str(cnf_path)
        self.last_proof_path = None
        self._last_proof_digest = None

        if returncode is None:  # timeout -> killed
            return SolverResult("UNKNOWN", None, call_stats)

        if self.spec.dialect == "minisat":
            status, model = self._parse_minisat(result_path, returncode)
        else:
            status, model = self._parse_competition(stdout, returncode)
        if status is None:
            raise ExternalSolverError(
                f"{self.name}: could not parse solver output "
                f"(exit {returncode}): {stderr.strip()[:500] or stdout.strip()[:500]}"
            )

        if status == "UNSAT" and proof_path is not None and proof_path.exists():
            self.last_proof_path = str(proof_path)
            self.proof_path = str(proof_path)
            trace = proof_path.read_text()
            self._last_proof_digest = proof_digest(trace)
            if self._verify:
                check = check_proof(self._cnf.clauses, trace, assumptions=cube)
                if not check.ok:
                    raise ExternalSolverError(
                        f"{self.name}: emitted DRAT proof failed verification: "
                        f"{check.reason}"
                    )
        if status == "SAT" and model is not None and model_vars is not None:
            model = {var: model.get(var, False) for var in model_vars}
        return SolverResult(status, model, call_stats)

    # -- internals ------------------------------------------------------
    def _export(self, cube: Sequence[int]) -> Path:
        clauses = self._cnf.clauses
        for clause in clauses[len(self._lines):]:
            self._lines.append(" ".join(str(lit) for lit in clause) + " 0\n")
        header = f"p cnf {self._cnf.num_vars} {len(self._lines) + len(cube)}\n"
        content = (
            header
            + "".join(self._lines)
            + "".join(f"{lit} 0\n" for lit in cube)
        )
        path = self._solve_path(content)
        if not (self._reuse and path.exists()):
            self._atomic_write(path, content)
        return path

    def _solve_path(self, content: str) -> Path:
        self._solve_index += 1
        if self._dimacs_dir is not None:
            # Content-addressed name: identical formula+cube re-solves map
            # to the same file, which is what makes --reuse-dimacs safe.
            digest = hashlib.sha256(content.encode("ascii")).hexdigest()[:16]
            self._dimacs_dir.mkdir(parents=True, exist_ok=True)
            return self._dimacs_dir / f"{self._tag}-{digest}.cnf"
        if self._tmpdir is None:
            self._tmpdir = tempfile.TemporaryDirectory(prefix="repro-sat-")
        return Path(self._tmpdir.name) / f"solve-{self._solve_index:04d}.cnf"

    @staticmethod
    def _atomic_write(path: Path, content: str) -> None:
        fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=path.name, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(content)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def _argv(
        self,
        cnf_path: Path,
        proof_path: Path | None,
        conflict_limit: int | None,
    ) -> list[str]:
        spec = self.spec
        argv = list(spec.command) + list(spec.quiet_flags)
        if conflict_limit is not None and spec.conflict_flag:
            argv.append(spec.conflict_flag.format(conflict_limit))
        if self._seed is not None and spec.name == BUNDLED_BACKEND:
            argv.append(f"--seed={self._seed}")
        if proof_path is not None:
            argv.extend(spec.proof_flags)
        if spec.dialect == "minisat":
            argv.append(str(cnf_path))
            argv.append(str(cnf_path.with_suffix(".out")))
        else:
            argv.append(str(cnf_path))
            if proof_path is not None:
                argv.append(str(proof_path))
        return argv

    def _run(
        self, argv: list[str], time_limit: float | None
    ) -> tuple[int | None, str, str]:
        """Launch the solver, retrying transient failures (see module doc).

        Two failure shapes are retried with bounded backoff: the fork
        itself being refused (ENOMEM/EAGAIN under memory pressure), and
        the solver dying on a signal before printing any verdict (an
        OOM-killed or operator-killed process, not a wrong answer).  A
        non-transient launch error (ENOENT, EACCES) raises immediately;
        exhausting the retries raises :class:`BackendUnavailableError`
        whose message reports the attempt count.
        """
        env = os.environ.copy()
        # The bundled solver (and any external:<script>) must be able to
        # import this package from a bare checkout.
        src_root = str(Path(__file__).resolve().parents[2])
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            src_root if not existing else src_root + os.pathsep + existing
        )
        popen_kwargs: dict[str, object] = {}
        if os.name == "posix":
            popen_kwargs["start_new_session"] = True
        last_failure = ""
        attempts = 0
        for attempt in range(LAUNCH_RETRIES + 1):
            if attempt:
                time.sleep(LAUNCH_BACKOFF * 2 ** (attempt - 1))
            attempts = attempt + 1
            try:
                proc = subprocess.Popen(
                    argv,
                    stdout=subprocess.PIPE,
                    stderr=subprocess.PIPE,
                    text=True,
                    env=env,
                    **popen_kwargs,  # type: ignore[arg-type]
                )
            except OSError as exc:
                if exc.errno not in _TRANSIENT_LAUNCH_ERRNOS:
                    raise BackendUnavailableError(
                        binary=argv[0], hint=f"failed to launch: {exc}"
                    ) from exc
                last_failure = f"failed to launch: {exc}"
                continue
            try:
                stdout, stderr = proc.communicate(timeout=time_limit)
            except subprocess.TimeoutExpired:
                self._kill(proc)
                try:
                    stdout, stderr = proc.communicate(timeout=5)
                except subprocess.TimeoutExpired:  # pragma: no cover - defensive
                    stdout, stderr = "", ""
                return None, stdout or "", stderr or ""
            if (
                proc.returncode is not None
                and proc.returncode < 0
                and not self._has_verdict(stdout or "")
            ):
                # Killed by a signal before printing any verdict: the
                # machine, not the formula, ended this run.
                last_failure = (
                    f"solver killed by signal {-proc.returncode} "
                    f"before producing a verdict"
                )
                continue
            return proc.returncode, stdout or "", stderr or ""
        raise BackendUnavailableError(
            binary=argv[0],
            hint=(
                f"{last_failure} "
                f"(after {attempts} launch attempt(s) with backoff)"
            ),
        )

    @staticmethod
    def _has_verdict(stdout: str) -> bool:
        """Whether solver output already contains an ``s ...`` status line."""
        return any(
            line.strip().startswith("s ") for line in stdout.splitlines()
        )

    @staticmethod
    def _kill(proc: subprocess.Popen) -> None:
        """SIGKILL the whole process group (solvers may fork helpers)."""
        if os.name == "posix":
            try:
                os.killpg(os.getpgid(proc.pid), signal.SIGKILL)
                return
            except (ProcessLookupError, PermissionError, OSError):
                pass
        proc.kill()

    def _parse_competition(
        self, stdout: str, returncode: int
    ) -> tuple[str | None, dict[int, bool] | None]:
        status: str | None = None
        lits: list[int] = []
        for raw in stdout.splitlines():
            line = raw.strip()
            if line.startswith("s "):
                word = line[2:].strip()
                if word == "SATISFIABLE":
                    status = "SAT"
                elif word == "UNSATISFIABLE":
                    status = "UNSAT"
                else:
                    status = "UNKNOWN"
            elif line.startswith("v "):
                lits.extend(int(tok) for tok in line[2:].split())
        if status is None:
            status = {10: "SAT", 20: "UNSAT", 0: "UNKNOWN"}.get(returncode)
        if status != "SAT":
            return status, None
        model = {abs(lit): lit > 0 for lit in lits if lit != 0}
        for var in range(1, self._cnf.num_vars + 1):
            model.setdefault(var, False)
        return status, model

    def _parse_minisat(
        self, result_path: Path | None, returncode: int
    ) -> tuple[str | None, dict[int, bool] | None]:
        if result_path is None or not result_path.exists():
            return {10: "SAT", 20: "UNSAT", 0: "UNKNOWN"}.get(returncode), None
        tokens = result_path.read_text().split()
        if not tokens:
            return None, None
        word = tokens[0]
        if word == "UNSAT":
            return "UNSAT", None
        if word == "INDET":
            return "UNKNOWN", None
        if word != "SAT":
            return None, None
        model = {abs(lit): lit > 0 for lit in map(int, tokens[1:]) if lit != 0}
        for var in range(1, self._cnf.num_vars + 1):
            model.setdefault(var, False)
        return "SAT", model


def _factory(name: str):
    def build(**kwargs: object) -> SubprocessBackend:
        return SubprocessBackend(resolve_spec(name), **kwargs)  # type: ignore[arg-type]

    return build


def create_external_backend(name: str, **kwargs: object) -> SubprocessBackend:
    """Entry point :func:`repro.sat.backend.create_backend` defers to for
    ``external:<path>`` names (lazy import keeps the modules acyclic)."""
    return SubprocessBackend(resolve_spec(name), **kwargs)  # type: ignore[arg-type]


for _name in (BUNDLED_BACKEND, *KNOWN_SOLVERS):
    register_backend(_name, _factory(_name), instrumented=False)
