"""Boolean satisfiability substrate.

This package is a self-contained SAT toolkit used by the SAT-MapIt core:

* :mod:`repro.sat.cnf` — CNF formula container with DIMACS I/O.
* :mod:`repro.sat.encodings` — cardinality encodings (at-most-one,
  exactly-one) in pairwise, sequential and commander flavours.
* :mod:`repro.sat.dpll` — a small, easy-to-audit DPLL solver used as a
  reference oracle in tests.
* :mod:`repro.sat.solver` — an incremental CDCL solver (watched literals,
  1-UIP clause learning, VSIDS, phase saving, Luby restarts, LBD clause
  deletion; the clause database persists across ``solve`` calls) used for
  production mapping runs.
* :mod:`repro.sat.backend` — the pluggable :class:`SolverBackend` protocol
  plus the ``cdcl``/``dpll`` registry the mapper selects engines from.
* :mod:`repro.sat.preprocess` — SatELite-style simplification (unit
  propagation, pure literals, subsumption, self-subsuming resolution,
  bounded variable elimination) with model reconstruction, available both as
  a one-shot :func:`simplify` and as the :class:`PreprocessingBackend`
  registry entries ``cdcl+preprocess`` / ``dpll+preprocess``.
* :mod:`repro.sat.dimacs` — named DIMACS export/import (``c varmap``
  comments + sidecar JSON) so encoded attempts round-trip through external
  solvers without losing model projection.
* :mod:`repro.sat.external` — the :class:`SubprocessBackend` registry
  entries ``kissat`` / ``cadical`` / ``minisat`` / ``subprocess`` (bundled
  :mod:`repro.sat.pysolver`) / ``external:<path>``.
* :mod:`repro.sat.drat` — DRAT proof logging, a bundled forward proof
  checker, and the optional ``drat-trim`` hook.

Literals follow the DIMACS convention: variables are positive integers and a
negative integer denotes the negation of the corresponding variable.
"""

from repro.sat.backend import (
    BackendStats,
    BackendUnavailableError,
    CDCLBackend,
    DPLLBackend,
    SolverBackend,
    available_backends,
    backend_instrumented,
    create_backend,
    register_backend,
    validate_backend,
)
from repro.sat.cnf import CNF, Clause
from repro.sat.dimacs import DimacsDocument, VarMap
from repro.sat.dpll import DPLLSolver
from repro.sat.drat import ProofLogger, check_proof
from repro.sat.external import (
    ExternalSolverError,
    ExternalSolverSpec,
    SubprocessBackend,
)
from repro.sat.encodings import (
    AMOEncoding,
    at_least_one,
    at_most_one,
    exactly_one,
)
from repro.sat.preprocess import (
    PreprocessConfig,
    PreprocessingBackend,
    PreprocessStats,
    Reconstructor,
    SimplifyResult,
    simplify,
)
from repro.sat.solver import CDCLSolver, SolverResult, SolverStats

__all__ = [
    "CNF",
    "Clause",
    "AMOEncoding",
    "at_least_one",
    "at_most_one",
    "exactly_one",
    "DPLLSolver",
    "CDCLSolver",
    "SolverResult",
    "SolverStats",
    "BackendStats",
    "BackendUnavailableError",
    "CDCLBackend",
    "DPLLBackend",
    "SolverBackend",
    "SubprocessBackend",
    "ExternalSolverError",
    "ExternalSolverSpec",
    "DimacsDocument",
    "VarMap",
    "ProofLogger",
    "check_proof",
    "available_backends",
    "backend_instrumented",
    "create_backend",
    "register_backend",
    "validate_backend",
    "PreprocessConfig",
    "PreprocessingBackend",
    "PreprocessStats",
    "Reconstructor",
    "SimplifyResult",
    "simplify",
]
