"""SatELite-style CNF preprocessing with model reconstruction.

The mapper's formulas are produced mechanically by the encoder, and like all
mechanically generated CNF they carry redundancy a solver pays for on every
propagation: duplicate and subsumed clauses, literals removable by
self-subsuming resolution, auxiliary variables whose elimination shrinks the
formula.  This module implements the classic SatELite preprocessing pipeline
(Eén & Biere 2005) on top of occurrence lists:

* **root-level unit propagation** to fixpoint,
* **pure-literal elimination**,
* **subsumption** and **self-subsuming resolution** (strengthening), and
* **bounded variable elimination** (BVE, the NiVER/SatELite rule: resolve a
  variable away when the non-tautological resolvents do not outnumber the
  clauses they replace).

Pure-literal elimination and BVE only preserve *equisatisfiability*, so every
such step pushes an entry onto a :class:`Reconstructor` stack; replaying the
stack over a model of the simplified formula reinstates the eliminated
variables, producing a model of the **original** formula (the differential
test-suite asserts this on hundreds of random instances).

Two entry points are exposed:

* :func:`simplify` — one-shot batch simplification for standalone solves,
  returning ``(CNF, Reconstructor, PreprocessStats)``;
* :class:`PreprocessingBackend` — a :class:`repro.sat.backend.SolverBackend`
  wrapper that simplifies every batch of pending clauses before pushing it
  into the wrapped (incremental) backend, and reconstructs every SAT model.

**Frozen variables.**  Callers that will reference a variable *after*
simplification — as a solve assumption (the mapper's attempt selectors), in a
later clause (blocking clauses over placement literals), or when decoding a
model structurally — must :meth:`~PreprocessingBackend.freeze` it (or pass it
in ``frozen=``).  Frozen variables are never eliminated, and a root-level
unit on a frozen variable is kept in the simplified formula verbatim, so the
simplified formula is *equivalent* (not merely equisatisfiable) to the
original over the frozen variables.  The :class:`PreprocessingBackend`
additionally auto-freezes every assumption literal it sees and every
variable that already reached the wrapped backend in an earlier batch;
adding a clause that references an already-eliminated variable raises
:class:`repro.exceptions.PreprocessError` rather than silently corrupting
the formula.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, fields
from collections.abc import Iterable, Sequence
from typing import NamedTuple

from repro.exceptions import PreprocessError
from repro.sat.backend import (
    BackendStats,
    SolverBackend,
    create_backend,
    register_backend,
)
from repro.sat.cnf import CNF
from repro.sat.solver import SolverResult


# ----------------------------------------------------------------------
# Configuration and statistics
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PreprocessConfig:
    """Knobs of the simplification pipeline.

    The defaults run the full SatELite pipeline; individual techniques can be
    switched off (the property-based test-suite isolates them this way).
    """

    unit_propagation: bool = True
    pure_literals: bool = True
    subsumption: bool = True
    #: Self-subsuming resolution (clause strengthening); requires
    #: ``subsumption`` since it runs inside the same occurrence sweep.
    self_subsumption: bool = True
    #: Bounded variable elimination.
    variable_elimination: bool = True
    #: A variable is only considered for elimination while it occurs in at
    #: most this many clauses (SatELite's cheap-first heuristic; keeps the
    #: resolvent enumeration quadratic only in a small constant).
    bve_occurrence_limit: int = 16
    #: How many clauses elimination may *add* net (0 = classic NiVER rule:
    #: the resolvents must not outnumber the clauses they replace).
    bve_clause_growth: int = 0
    #: Pipeline rounds: the techniques enable each other (a strengthened
    #: clause may become a unit, an elimination may expose a subsumption), so
    #: the pipeline loops until a fixpoint or this many rounds.
    max_rounds: int = 12


@dataclass
class PreprocessStats:
    """Counters describing one simplification (cumulative for a backend)."""

    original_variables: int = 0
    original_clauses: int = 0
    simplified_variables: int = 0
    simplified_clauses: int = 0
    #: Exact duplicates dropped at ingest (the encoder-path redundancy this
    #: layer surfaced; see ``EncodingStats.num_duplicate_clauses``).
    duplicate_clauses: int = 0
    #: Tautologies dropped at ingest.
    tautologies: int = 0
    #: Clauses removed because a root-level unit satisfies them.
    root_satisfied_clauses: int = 0
    units_fixed: int = 0
    pure_literals: int = 0
    subsumed_clauses: int = 0
    #: Literals removed by self-subsuming resolution.
    strengthened_clauses: int = 0
    eliminated_variables: int = 0
    rounds: int = 0
    preprocess_time: float = 0.0

    @property
    def clauses_removed(self) -> int:
        """Net clause-count reduction achieved by the pipeline."""
        return max(0, self.original_clauses - self.simplified_clauses)

    @property
    def variables_removed(self) -> int:
        """Variables fixed or eliminated (absent from the simplified CNF)."""
        return max(0, self.original_variables - self.simplified_variables)

    def merge(self, other: "PreprocessStats") -> None:
        """Accumulate ``other`` into this instance (backend flushes)."""
        for entry in fields(self):
            setattr(self, entry.name,
                    getattr(self, entry.name) + getattr(other, entry.name))


# ----------------------------------------------------------------------
# Model reconstruction
# ----------------------------------------------------------------------
class Reconstructor:
    """Replayable record of the equisatisfiable-only simplification steps.

    Entries are pushed in elimination order and replayed in reverse: a
    variable eliminated late may appear in the clauses stored for a variable
    eliminated early, so its value must be reinstated first.
    """

    def __init__(self, num_vars: int = 0) -> None:
        self._stack: list[tuple] = []
        self._num_vars = num_vars
        self._retired: set[int] = set()

    def __len__(self) -> int:
        return len(self._stack)

    @property
    def retired_vars(self) -> frozenset[int]:
        """Variables no longer present downstream (fixed or eliminated).

        Referencing one of these in a clause added *after* simplification is
        unsound; :class:`PreprocessingBackend` rejects such clauses.
        """
        return frozenset(self._retired)

    def is_retired(self, var: int) -> bool:
        """Membership test against the live retired set (no copy)."""
        return var in self._retired

    def grow(self, num_vars: int) -> None:
        """Raise the variable universe models are completed over."""
        self._num_vars = max(self._num_vars, num_vars)

    def record_fixed(self, lit: int, retired: bool = True) -> None:
        """Record a root-fixed literal (unit propagation or pure literal)."""
        self._stack.append(("fixed", lit))
        if retired:
            self._retired.add(abs(lit))

    def record_elimination(self, var: int, clauses: Sequence[tuple[int, ...]]) -> None:
        """Record a BVE step: ``var`` plus every clause it occurred in."""
        self._stack.append(("elim", var, tuple(clauses)))
        self._retired.add(var)

    def extend(self, model: dict[int, bool]) -> dict[int, bool]:
        """Turn a model of the simplified formula into one of the original.

        Replays the stack in reverse.  For a BVE entry the variable is set
        true exactly when some stored clause containing it positively is not
        satisfied by the other literals — the removed negative-occurrence
        clauses are then satisfiable too, because every resolvent is in the
        simplified formula and therefore satisfied by ``model``.
        """
        full = dict(model)
        for entry in reversed(self._stack):
            if entry[0] == "fixed":
                lit = entry[1]
                full[abs(lit)] = lit > 0
                continue
            var, clauses = entry[1], entry[2]
            value = False
            for clause in clauses:
                positive = False
                satisfied = False
                for lit in clause:
                    if lit == var:
                        positive = True
                        continue
                    if lit == -var:
                        continue
                    if full.get(abs(lit), False) == (lit > 0):
                        satisfied = True
                        break
                if positive and not satisfied:
                    value = True
                    break
            full[var] = value
        for var in range(1, self._num_vars + 1):
            full.setdefault(var, False)
        return full


# ----------------------------------------------------------------------
# The occurrence-list simplifier
# ----------------------------------------------------------------------
class _Simplifier:
    """One batch of SatELite-style simplification over occurrence lists.

    Clauses live in a stable-index list (``None`` marks removal); ``occur``
    maps every literal to the indices of the live clauses containing it, and
    ``_keys`` keeps each live clause's canonical form so exact duplicates —
    whether ingested or produced later by strengthening/resolution — are
    detected in O(1).
    """

    def __init__(
        self,
        num_vars: int,
        frozen: Iterable[int] = (),
        config: PreprocessConfig | None = None,
        reconstructor: Reconstructor | None = None,
    ) -> None:
        self.config = config or PreprocessConfig()
        self.num_vars = num_vars
        self.frozen = {abs(v) for v in frozen}
        self.recon = reconstructor if reconstructor is not None else Reconstructor()
        self.recon.grow(num_vars)
        self.stats = PreprocessStats(original_variables=num_vars)
        self.conflict = False
        self._clauses: list[list[int] | None] = []
        self._keys: list[tuple[int, ...] | None] = []
        self._key_set: set[tuple[int, ...]] = set()
        self._occur: dict[int, set[int]] = {}
        self._fixed: dict[int, bool] = {}
        self._units: list[int] = []

    # -- ingest ---------------------------------------------------------
    def ingest(self, clauses: Iterable[Sequence[int]]) -> None:
        for raw in clauses:
            self.stats.original_clauses += 1
            seen: set[int] = set()
            lits: list[int] = []
            tautology = False
            for lit in raw:
                if lit == 0:
                    raise ValueError("literal 0 is not allowed in a clause")
                self.num_vars = max(self.num_vars, abs(lit))
                if -lit in seen:
                    tautology = True
                if lit not in seen:
                    seen.add(lit)
                    lits.append(lit)
            if tautology:
                self.stats.tautologies += 1
                continue
            self._add(lits, duplicate_counts=True)
        self.recon.grow(self.num_vars)
        self.stats.original_variables = len(
            {abs(lit) for clause in self._clauses if clause is not None for lit in clause}
            | {abs(lit) for lit in self._units}
            | set(self._fixed)
        )

    def _add(self, lits: list[int], duplicate_counts: bool = False) -> None:
        if self.conflict:
            return
        if not lits:
            self.conflict = True
            return
        key = tuple(sorted(lits))
        if key in self._key_set:
            if duplicate_counts:
                self.stats.duplicate_clauses += 1
            return
        index = len(self._clauses)
        self._clauses.append(lits)
        self._keys.append(key)
        self._key_set.add(key)
        for lit in lits:
            self._occur.setdefault(lit, set()).add(index)
        if len(lits) == 1:
            self._units.append(lits[0])

    # -- clause surgery -------------------------------------------------
    def _remove_clause(self, index: int) -> None:
        clause = self._clauses[index]
        if clause is None:
            return
        for lit in clause:
            self._occur[lit].discard(index)
        self._key_set.discard(self._keys[index])
        self._clauses[index] = None
        self._keys[index] = None

    def _strip_literal(self, index: int, lit: int) -> None:
        """Remove ``lit`` from clause ``index`` (falsified or strengthened)."""
        clause = self._clauses[index]
        if clause is None or lit not in clause:
            return
        clause.remove(lit)
        self._occur[lit].discard(index)
        self._key_set.discard(self._keys[index])
        if not clause:
            self.conflict = True
            return
        key = tuple(sorted(clause))
        if key in self._key_set:
            # Strengthening made this an exact duplicate of a live clause.
            self.stats.subsumed_clauses += 1
            for other in clause:
                self._occur[other].discard(index)
            self._clauses[index] = None
            self._keys[index] = None
            return
        self._keys[index] = key
        self._key_set.add(key)
        if len(clause) == 1:
            self._units.append(clause[0])

    # -- pipeline passes ------------------------------------------------
    def propagate_units(self) -> bool:
        changed = False
        while self._units and not self.conflict:
            lit = self._units.pop()
            var, value = abs(lit), lit > 0
            current = self._fixed.get(var)
            if current is not None:
                if current != value:
                    self.conflict = True
                continue
            self._fixed[var] = value
            self.stats.units_fixed += 1
            # Units on frozen variables are re-emitted verbatim by
            # ``output`` (the formula stays equivalent over frozen vars),
            # so the variable is still referencable downstream.
            self.recon.record_fixed(lit, retired=var not in self.frozen)
            changed = True
            for index in list(self._occur.get(lit, ())):
                clause = self._clauses[index]
                # The propagated unit clause itself is consumed, not
                # "root-satisfied redundancy"; count only longer clauses.
                if clause is not None and len(clause) > 1:
                    self.stats.root_satisfied_clauses += 1
                self._remove_clause(index)
            for index in list(self._occur.get(-lit, ())):
                self._strip_literal(index, -lit)
                if self.conflict:
                    break
        return changed

    def _candidate_vars(self) -> list[int]:
        """Variables with live occurrences, ascending.

        Scanning these instead of the whole variable universe keeps the
        pure-literal and elimination passes O(batch) — the incremental
        wrapper simplifies small batches against a backend whose lifetime
        variable count keeps growing.
        """
        return sorted({abs(lit) for lit, indices in self._occur.items() if indices})

    def eliminate_pure_literals(self) -> bool:
        changed = False
        progress = True
        while progress and not self.conflict:
            progress = False
            for var in self._candidate_vars():
                if var in self._fixed or var in self.frozen:
                    continue
                npos = len(self._occur.get(var, ()))
                nneg = len(self._occur.get(-var, ()))
                if npos == 0 and nneg == 0:
                    continue
                if nneg == 0:
                    lit = var
                elif npos == 0:
                    lit = -var
                else:
                    continue
                self._fixed[var] = lit > 0
                self.recon.record_fixed(lit)
                self.stats.pure_literals += 1
                for index in list(self._occur.get(lit, ())):
                    self._remove_clause(index)
                progress = changed = True
        return changed

    def subsume(self) -> bool:
        changed = False
        order = sorted(
            (i for i, clause in enumerate(self._clauses) if clause is not None),
            key=lambda i: len(self._clauses[i]),  # type: ignore[arg-type]
        )
        for index in order:
            clause = self._clauses[index]
            if clause is None:
                continue
            literal_set = set(clause)
            # Candidate supersets all contain the least-occurring literal.
            best = min(clause, key=lambda lit: len(self._occur.get(lit, ())))
            for other_index in list(self._occur.get(best, ())):
                if other_index == index:
                    continue
                other = self._clauses[other_index]
                if other is None or len(other) < len(clause):
                    continue
                if literal_set.issubset(other):
                    self._remove_clause(other_index)
                    self.stats.subsumed_clauses += 1
                    changed = True
            if not self.config.self_subsumption:
                continue
            # Self-subsuming resolution: if this clause with one literal
            # flipped is a subset of another clause, the flipped literal can
            # be resolved out of the other clause.
            for lit in list(clause):
                if self._clauses[index] is None or self.conflict:
                    break
                rest = literal_set - {lit}
                for other_index in list(self._occur.get(-lit, ())):
                    other = self._clauses[other_index]
                    if other is None or len(other) < len(clause):
                        continue
                    if rest.issubset(other):
                        self._strip_literal(other_index, -lit)
                        self.stats.strengthened_clauses += 1
                        changed = True
                        if self.conflict:
                            return changed
        return changed

    def eliminate_variables(self) -> bool:
        changed = False
        for var in self._candidate_vars():
            if self.conflict:
                break
            if var in self._fixed or var in self.frozen:
                continue
            positive = list(self._occur.get(var, ()))
            negative = list(self._occur.get(-var, ()))
            if not positive or not negative:
                continue  # the pure-literal pass owns one-sided variables
            if len(positive) + len(negative) > self.config.bve_occurrence_limit:
                continue
            budget = len(positive) + len(negative) + self.config.bve_clause_growth
            resolvents: list[list[int]] = []
            within_budget = True
            for pos_index in positive:
                pos_clause = self._clauses[pos_index]
                for neg_index in negative:
                    resolvent = _resolve(
                        pos_clause, self._clauses[neg_index], var  # type: ignore[arg-type]
                    )
                    if resolvent is None:
                        continue
                    resolvents.append(resolvent)
                    if len(resolvents) > budget:
                        within_budget = False
                        break
                if not within_budget:
                    break
            if not within_budget:
                continue
            stored = [tuple(self._clauses[i]) for i in positive + negative]  # type: ignore[arg-type]
            self.recon.record_elimination(var, stored)
            for index in positive + negative:
                self._remove_clause(index)
            for resolvent in resolvents:
                self._add(resolvent)
            self.stats.eliminated_variables += 1
            changed = True
        return changed

    # -- driver ---------------------------------------------------------
    def run(self) -> None:
        start = time.perf_counter()
        config = self.config
        changed = True
        while changed and not self.conflict and self.stats.rounds < config.max_rounds:
            self.stats.rounds += 1
            changed = False
            if config.unit_propagation:
                changed |= self.propagate_units()
                if self.conflict:
                    break
            if config.pure_literals:
                changed |= self.eliminate_pure_literals()
            if config.subsumption:
                changed |= self.subsume()
                if self.conflict:
                    break
                if config.unit_propagation:
                    changed |= self.propagate_units()
                    if self.conflict:
                        break
            if config.variable_elimination:
                changed |= self.eliminate_variables()
                if config.unit_propagation:
                    changed |= self.propagate_units()
        self.stats.preprocess_time += time.perf_counter() - start

    def live_clauses(self) -> list[list[int]]:
        """The simplified clause set, frozen root units included."""
        out: list[list[int]] = []
        if self.conflict:
            return [[]]
        for var in sorted(self._fixed):
            if var in self.frozen:
                out.append([var if self._fixed[var] else -var])
        for clause in self._clauses:
            if clause is not None:
                out.append(list(clause))
        return out

    def finalize_stats(self) -> PreprocessStats:
        live = self.live_clauses()
        self.stats.simplified_clauses = len(live)
        self.stats.simplified_variables = len(
            {abs(lit) for clause in live for lit in clause}
        )
        return self.stats


def _resolve(
    pos_clause: list[int], neg_clause: list[int], var: int
) -> list[int] | None:
    """Resolvent of two clauses on ``var``; ``None`` when tautological."""
    merged = {lit for lit in pos_clause if lit != var}
    for lit in neg_clause:
        if lit == -var:
            continue
        if -lit in merged:
            return None
        merged.add(lit)
    return sorted(merged)


# ----------------------------------------------------------------------
# One-shot batch interface
# ----------------------------------------------------------------------
class SimplifyResult(NamedTuple):
    """Result of :func:`simplify` (unpacks as ``cnf, reconstructor, stats``)."""

    cnf: CNF
    reconstructor: Reconstructor
    stats: PreprocessStats


def simplify(
    cnf: CNF,
    frozen: Iterable[int] = (),
    config: PreprocessConfig | None = None,
) -> SimplifyResult:
    """Simplify ``cnf``, preserving satisfiability and model reconstruction.

    The returned formula keeps the original variable numbering (eliminated
    variables are simply absent from its clauses) and is equivalent to the
    input over the ``frozen`` variables, so it can be solved under
    assumptions on frozen literals.  Models of the simplified formula are
    turned into models of the original with ``reconstructor.extend(model)``.
    """
    simplifier = _Simplifier(cnf.num_vars, frozen=frozen, config=config)
    simplifier.ingest(cnf.clauses)
    simplifier.run()
    out = CNF(num_vars=cnf.num_vars)
    for clause in simplifier.live_clauses():
        out.add_clause(clause)
    stats = simplifier.finalize_stats()
    return SimplifyResult(out, simplifier.recon, stats)


# ----------------------------------------------------------------------
# Incremental backend wrapper
# ----------------------------------------------------------------------
class PreprocessingBackend:
    """A :class:`SolverBackend` that simplifies clauses before solving.

    Clauses accumulate in a pending buffer; each ``solve`` call runs the
    SatELite pipeline over the buffer and pushes only the simplified clauses
    into the wrapped backend.  Soundness of batch-local simplification:

    * equivalence-preserving steps (dedup, subsumption, strengthening) are
      sound regardless of what other clauses exist;
    * equisatisfiable-only steps (pure literals, BVE) are restricted to
      variables that occur in **no other batch** — variables already pushed
      downstream are auto-frozen, and adding a *later* clause over an
      eliminated variable raises :class:`PreprocessError` (callers freeze
      the variables they intend to reference again).

    Every SAT model is passed through the shared :class:`Reconstructor`, so
    callers always see models of the original, unsimplified formula.
    """

    def __init__(
        self,
        inner: SolverBackend,
        config: PreprocessConfig | None = None,
        frozen: Iterable[int] = (),
    ) -> None:
        self._inner = inner
        self._config = config or PreprocessConfig()
        self.name = f"{inner.name}+preprocess"
        self.stats = BackendStats()
        self.preprocess_stats = PreprocessStats()
        self._reconstructor = Reconstructor(num_vars=inner.num_vars)
        self._frozen: set[int] = {abs(v) for v in frozen}
        self._seen: set[int] = set()
        self._pending: list[list[int]] = []

    # -- SolverBackend surface ------------------------------------------
    @property
    def num_vars(self) -> int:
        return self._inner.num_vars

    def new_var(self) -> int:
        self.stats.variables_added += 1
        var = self._inner.new_var()
        self._reconstructor.grow(var)
        return var

    def new_vars(self, count: int) -> list[int]:
        self.stats.variables_added += count
        variables = self._inner.new_vars(count)
        if variables:
            self._reconstructor.grow(variables[-1])
        return variables

    def add_clause(self, literals: Sequence[int]) -> None:
        clause = list(literals)
        for lit in clause:
            if self._reconstructor.is_retired(abs(lit)):
                raise PreprocessError(
                    f"clause {clause} references variable {abs(lit)}, which "
                    "preprocessing already eliminated; freeze variables that "
                    "later clauses or assumptions will mention"
                )
        self.stats.clauses_added += 1
        self._pending.append(clause)

    def add_clauses(
        self,
        clauses: Iterable[Sequence[int]],
        trusted: bool = False,
        guard: int | None = None,
    ) -> None:
        # ``trusted``/``guard`` are accepted for interface parity; the
        # simplifier's ingest re-checks clause hygiene regardless, and the
        # guard-aware routing only exists inside the CDCL engine.
        for clause in clauses:
            self.add_clause(clause)

    def solve(
        self,
        assumptions: Sequence[int] = (),
        conflict_limit: int | None = None,
        time_limit: float | None = None,
        model_vars: Iterable[int] | None = None,
    ) -> SolverResult:
        self.freeze(abs(lit) for lit in assumptions)
        self._flush()
        # The inner model is never projected here: reconstruction replays
        # eliminated variables against the *full* simplified-formula model.
        result = self._inner.solve(
            assumptions=assumptions,
            conflict_limit=conflict_limit,
            time_limit=time_limit,
        )
        call = result.stats
        self.stats.solve_calls += 1
        self.stats.conflicts += call.conflicts
        self.stats.decisions += call.decisions
        self.stats.propagations += call.propagations
        self.stats.learned_clauses += call.learned_clauses
        self.stats.solve_time += call.solve_time
        self.stats.learned_in_db = self._inner.stats.learned_in_db
        if result.model is not None:
            model = self._reconstructor.extend(result.model)
            if model_vars is not None:
                model = {var: model.get(var, False) for var in model_vars}
            return SolverResult(result.status, model, call)
        return result

    # -- frozen-variable API --------------------------------------------
    def freeze(self, variables: Iterable[int]) -> None:
        """Protect ``variables`` from elimination in this and later batches.

        Freezing must happen before the batch that constrains the variable is
        flushed; freezing an already-eliminated variable raises
        :class:`PreprocessError`.
        """
        for var in variables:
            var = abs(var)
            if self._reconstructor.is_retired(var):
                raise PreprocessError(
                    f"variable {var} was already eliminated and cannot be frozen"
                )
            self._frozen.add(var)

    @property
    def frozen_vars(self) -> frozenset[int]:
        return frozenset(self._frozen)

    @property
    def retired_vars(self) -> frozenset[int]:
        """Variables preprocessing removed; unusable in future clauses."""
        return self._reconstructor.retired_vars

    @property
    def reconstructor(self) -> Reconstructor:
        return self._reconstructor

    # -- internals ------------------------------------------------------
    def _flush(self) -> None:
        if not self._pending:
            return
        pending, self._pending = self._pending, []
        # Variables the wrapped backend already has clauses over cannot be
        # eliminated batch-locally: treat them exactly like frozen ones
        # (derived units on them are pushed downstream, keeping equivalence).
        simplifier = _Simplifier(
            self.num_vars,
            frozen=self._frozen | self._seen,
            config=self._config,
            reconstructor=self._reconstructor,
        )
        simplifier.ingest(pending)
        simplifier.run()
        self._inner.add_clauses(simplifier.live_clauses())
        self.preprocess_stats.merge(simplifier.finalize_stats())
        for clause in pending:
            for lit in clause:
                if not self._reconstructor.is_retired(abs(lit)):
                    self._seen.add(abs(lit))


def _register_preprocessing_backends() -> None:
    """Expose ``<engine>+preprocess`` names in the backend registry."""
    for inner_name in ("cdcl", "dpll"):

        def factory(inner_name: str = inner_name, **kwargs) -> PreprocessingBackend:
            return PreprocessingBackend(create_backend(inner_name, **kwargs))

        register_backend(f"{inner_name}+preprocess", factory)


_register_preprocessing_backends()
