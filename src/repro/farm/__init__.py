"""Fault-tolerant sweep farm.

The farm turns ``run_sweep(jobs=N)`` from a fire-and-forget process pool
into a crash-surviving work-queue architecture:

* :mod:`repro.farm.journal` — every (scenario, kernel, size, mapper) work
  item is materialised into an on-disk, append-only journal under a
  content-hash ID, so a killed sweep can be resumed (``--resume``) without
  re-solving finished items.
* :mod:`repro.farm.leases` — items are handed to workers under leases with
  heartbeats; a worker that stops heartbeating loses its lease and the
  item is requeued.  A retry policy with exponential backoff + jitter
  distinguishes transient failures (worker crash, flaky backend) from
  permanent ones (unmappable kernel), with a per-item retry cap and a
  poison-item quarantine so one bad kernel cannot stall the farm.
* :mod:`repro.farm.scheduler` — the scheduler process that owns the queue,
  the worker pool, lease expiry and crash respawn.
* :mod:`repro.farm.faults` — the fault-injection harness (env-var or
  config driven) behind the chaos test suite: the invariant is that a
  sweep under injected faults produces the same records as a fault-free
  sweep, just with nonzero retry counters.
"""

from repro.farm.faults import FaultPlan
from repro.farm.journal import SweepJournal, WorkItem, sweep_config_digest, work_item_id
from repro.farm.leases import FarmStats, LeasedWorkQueue
from repro.farm.retry import PERMANENT, TRANSIENT, RetryPolicy, classify_failure
from repro.farm.scheduler import FarmConfig, run_farm

__all__ = [
    "FaultPlan",
    "SweepJournal",
    "WorkItem",
    "sweep_config_digest",
    "work_item_id",
    "FarmStats",
    "LeasedWorkQueue",
    "PERMANENT",
    "TRANSIENT",
    "RetryPolicy",
    "classify_failure",
    "FarmConfig",
    "run_farm",
]
