"""Fault-injection harness for the sweep farm.

The chaos suite's invariant is that a sweep under injected faults produces
*exactly* the records a fault-free sweep produces — same IIs, same
mappings — just with nonzero retry/respawn counters.  For that invariant
to be assertable in CI, every fault here is **deterministic**:

* ``kill_worker_after=N`` — the target worker SIGKILLs itself upon
  *receiving* its (N+1)-th item, before solving it.  Killing on receipt
  (not after sending a result) exercises the requeue path: the item is
  under lease when the worker dies, so the scheduler must detect the
  crash, requeue the item, and respawn the worker.  Respawned workers get
  fresh monotonic IDs, so the fault fires exactly once.
* ``wedge_worker_after=N`` — same trigger, but the worker SIGSTOPs itself
  instead of dying.  Its process stays alive while its heartbeats stop,
  so the only way the farm can make progress is the lease-TTL expiry path
  (reap the wedged process, requeue the item).
* ``backend_fail_rate=p`` — a deterministic per-item coin (hashed from
  the plan seed and the item's content-hash ID, not ``random``) selects a
  fraction ``p`` of items whose *first* ``backend_fail_attempts`` attempts
  raise :class:`~repro.sat.backend.BackendUnavailableError`.  Later
  attempts succeed, so a sweep with ``max_retries >=
  backend_fail_attempts`` is guaranteed to converge — the fault tests the
  retry/backoff machinery, not the operator's patience.
* ``corrupt_cache_after=N`` — after the N-th completed item the scheduler
  truncates the newest mapping-cache entry mid-run, exercising the
  cache's corrupted-entry recovery (delete + recount + re-solve) under
  farm concurrency.

Plans come from ``--chaos`` on the CLI or the ``REPRO_CHAOS`` environment
variable, as a comma-separated ``knob=value`` spec, e.g.::

    REPRO_CHAOS="kill-after=2,backend-rate=0.5,backend-attempts=1"
"""

from __future__ import annotations

import hashlib
import os
import signal
from dataclasses import dataclass, fields
from pathlib import Path

from repro.sat.backend import BackendUnavailableError

__all__ = ["FaultPlan", "CHAOS_ENV", "corrupt_newest_entry"]

#: Environment variable holding a fault spec (same grammar as ``--chaos``).
CHAOS_ENV = "REPRO_CHAOS"

#: Spec keys -> FaultPlan field names.
_SPEC_KEYS = {
    "kill-after": "kill_worker_after",
    "wedge-after": "wedge_worker_after",
    "backend-rate": "backend_fail_rate",
    "backend-attempts": "backend_fail_attempts",
    "corrupt-cache-after": "corrupt_cache_after",
    "seed": "seed",
    "target-worker": "target_worker",
}


@dataclass(frozen=True)
class FaultPlan:
    """One deterministic set of faults to inject into a farm run."""

    #: Worker ``target_worker`` SIGKILLs itself on receiving item N+1.
    kill_worker_after: int | None = None
    #: Worker ``target_worker`` SIGSTOPs itself on receiving item N+1.
    wedge_worker_after: int | None = None
    #: Fraction of items whose early solve attempts fail (see module doc).
    backend_fail_rate: float = 0.0
    #: How many attempts per selected item fail before one succeeds.
    backend_fail_attempts: int = 1
    #: Corrupt the newest cache entry after this many completed items.
    corrupt_cache_after: int | None = None
    #: Seed mixed into the per-item backend-failure coin.
    seed: int = 0
    #: Which *original* worker the kill/wedge faults target (respawned
    #: workers get fresh IDs, so each fault fires at most once).
    target_worker: int = 0

    # -- parsing -------------------------------------------------------
    @classmethod
    def from_spec(cls, spec: str) -> "FaultPlan":
        """Parse a ``knob=value,knob=value`` chaos spec."""
        values: dict[str, object] = {}
        types = {f.name: f.type for f in fields(cls)}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            key, _, raw = part.partition("=")
            field_name = _SPEC_KEYS.get(key.strip())
            if field_name is None:
                known = ", ".join(sorted(_SPEC_KEYS))
                raise ValueError(
                    f"unknown chaos knob {key.strip()!r}; known knobs: {known}"
                )
            try:
                if "float" in str(types[field_name]):
                    values[field_name] = float(raw)
                else:
                    values[field_name] = int(raw)
            except ValueError:
                raise ValueError(
                    f"chaos knob {key.strip()!r} needs a number, got {raw!r}"
                ) from None
        return cls(**values)  # type: ignore[arg-type]

    @classmethod
    def from_env(cls, environ: dict[str, str] | None = None) -> "FaultPlan | None":
        """The plan from :data:`CHAOS_ENV`, or ``None`` when unset/empty."""
        spec = (environ if environ is not None else os.environ).get(CHAOS_ENV, "")
        if not spec.strip():
            return None
        return cls.from_spec(spec)

    @property
    def active(self) -> bool:
        return (
            self.kill_worker_after is not None
            or self.wedge_worker_after is not None
            or self.backend_fail_rate > 0.0
            or self.corrupt_cache_after is not None
        )

    # -- worker-side triggers (called inside worker processes) ---------
    def on_item_received(self, worker: int, items_received: int) -> None:
        """Fire kill/wedge faults; ``items_received`` counts this item.

        SIGKILL/SIGSTOP are raised against *our own* process, exactly the
        way an OOM kill or a stuck NFS mount would hit a real worker — the
        scheduler must recover from the outside.
        """
        if worker != self.target_worker:
            return
        if (
            self.kill_worker_after is not None
            and items_received == self.kill_worker_after + 1
        ):
            os.kill(os.getpid(), signal.SIGKILL)
        if (
            self.wedge_worker_after is not None
            and items_received == self.wedge_worker_after + 1
        ):
            os.kill(os.getpid(), signal.SIGSTOP)

    def should_fail_backend(self, item_id: str, attempt: int) -> bool:
        """Deterministic coin: does this attempt of this item fail?"""
        if self.backend_fail_rate <= 0.0 or attempt >= self.backend_fail_attempts:
            return False
        digest = hashlib.sha256(f"{self.seed}:{item_id}".encode()).digest()
        fraction = int.from_bytes(digest[:8], "big") / 2**64
        return fraction < self.backend_fail_rate

    def check_backend(self, item_id: str, attempt: int) -> None:
        """Raise the injected backend failure when the coin says so."""
        if self.should_fail_backend(item_id, attempt):
            raise BackendUnavailableError(
                binary="chaos",
                hint=(
                    f"injected backend failure (attempt {attempt + 1} of "
                    f"{self.backend_fail_attempts} doomed)"
                ),
            )


def corrupt_newest_entry(cache_dir: str | os.PathLike[str]) -> Path | None:
    """Truncate the newest mapping-cache entry to garbage, mid-run.

    Returns the corrupted path, or ``None`` when the cache holds no
    entries yet.  The next reader must detect the damage, delete the
    entry, count it (``CacheStats.corrupted``) and re-solve — never serve
    it or crash.
    """
    entries = sorted(
        Path(cache_dir).glob("*.json"),
        key=lambda path: path.stat().st_mtime,
        reverse=True,
    )
    if not entries:
        return None
    victim = entries[0]
    victim.write_text('{"schema": "satmapit-mapcache/1", "truncated', encoding="utf-8")
    return victim
