"""Append-only work journal for resumable sweeps.

One sweep = one ``journal.jsonl`` file in the journal directory.  The
scheduler appends a JSON line per state transition; nothing is ever
rewritten, so any prefix of the file is a consistent snapshot and a
SIGKILLed sweep can be resumed from whatever made it to disk.  Each
append is flushed and fsynced — the journal is the farm's source of
truth, and an entry that was reported durable must survive power loss
exactly like a mapping-cache entry does.

Line vocabulary (``type`` field):

* ``header`` — schema tag plus the :func:`sweep_config_digest` of the
  experiment configuration.  A resume against a journal written by a
  *different* configuration (or solver version) refuses to run: the item
  IDs would not line up and stale records could be served silently.
* ``item`` — one materialised work item, in deterministic sweep order,
  under its content-hash ID (:func:`work_item_id`, reusing the mapping
  cache's config-fingerprint keying).
* ``lease`` / ``done`` / ``failed`` / ``requeued`` / ``quarantined`` —
  lifecycle transitions appended by the queue.  ``done`` carries the full
  :class:`~repro.experiments.runner.RunRecord` as plain data.
* ``resumed`` — appended by every resume, recording how many finished
  items were skipped.

Replay rules: a torn final line (the scheduler died mid-append) is
tolerated and ignored; a malformed line anywhere *else* means the file
was edited or corrupted and raises :class:`~repro.exceptions.FarmError`.
A ``lease`` without a later ``done``/``requeued``/``quarantined`` was in
flight at the crash — replay expires it, so the item is pending again.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, TYPE_CHECKING, Any

from repro.exceptions import FarmError
from repro.sat.solver import SOLVER_VERSION

if TYPE_CHECKING:  # pragma: no cover - cycle guard
    from repro.experiments.runner import ExperimentConfig

#: Journal-format tag; bumping it invalidates every existing journal.
SCHEMA = "satmapit-farm-journal/1"

JOURNAL_FILENAME = "journal.jsonl"

#: ExperimentConfig fields that are farm *execution* knobs, not part of
#: the sweep protocol: resuming with a different retry cap or lease TTL
#: is legitimate (e.g. loosening budgets after a flaky night), so they
#: are excluded from the compatibility digest.
_EXECUTION_FIELDS = frozenset({"max_retries", "lease_ttl"})


def _plain(value: Any) -> Any:
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, (list, tuple)):
        return [_plain(entry) for entry in value]
    return value


def config_fingerprint(config: "ExperimentConfig") -> dict:
    """The sweep configuration as plain data, minus execution knobs."""
    fingerprint = {}
    for f in dataclasses.fields(config):
        if f.name in _EXECUTION_FIELDS:
            continue
        fingerprint[f.name] = _plain(getattr(config, f.name))
    return fingerprint


def sweep_config_digest(config: "ExperimentConfig") -> str:
    """Content hash deciding journal/resume compatibility.

    Includes the solver version: a resumed sweep must not mix records
    from two solver generations any more than the mapping cache would.
    """
    payload = {
        "schema": SCHEMA,
        "solver_version": SOLVER_VERSION,
        "config": config_fingerprint(config),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def work_item_id(
    kernel: str, size: int, mapper: str, scenario: str, config_digest: str
) -> str:
    """Content-hash ID of one (scenario, kernel, size, mapper) work item."""
    payload = {
        "schema": SCHEMA,
        "config": config_digest,
        "scenario": scenario,
        "kernel": kernel,
        "size": size,
        "mapper": mapper,
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class WorkItem:
    """One materialised unit of sweep work."""

    index: int
    id: str
    kernel: str
    size: int
    mapper: str
    scenario: str

    def payload(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_payload(cls, data: dict) -> "WorkItem":
        return cls(
            index=int(data["index"]),
            id=str(data["id"]),
            kernel=str(data["kernel"]),
            size=int(data["size"]),
            mapper=str(data["mapper"]),
            scenario=str(data["scenario"]),
        )

    def label(self) -> str:
        return f"{self.kernel}@{self.size}x{self.size}/{self.mapper} [{self.scenario}]"


@dataclass
class JournalState:
    """Everything replay recovers from a journal file."""

    config_digest: str
    items: list[WorkItem] = field(default_factory=list)
    #: item id -> RunRecord as plain data (the latest ``done`` wins).
    done: dict[str, dict] = field(default_factory=dict)
    #: item id -> last failure message, for quarantined items.
    quarantined: dict[str, str] = field(default_factory=dict)
    #: item id -> retry attempts already consumed.
    attempts: dict[str, int] = field(default_factory=dict)
    #: item ids whose lease was in flight when the journal ended.
    in_flight: set[str] = field(default_factory=set)


class SweepJournal:
    """Appender/replayer for one sweep's journal file."""

    def __init__(self, directory: str | os.PathLike[str]) -> None:
        self.directory = Path(directory)
        self.path = self.directory / JOURNAL_FILENAME
        self._handle: IO[str] | None = None

    # -- writing -------------------------------------------------------
    def create(self, config_digest: str, items: list[WorkItem]) -> None:
        """Start a fresh journal: header plus every materialised item."""
        if self.path.exists():
            raise FarmError(
                f"{self.path} already holds a sweep journal; resume it "
                f"(--resume {self.directory}) or pick a fresh directory"
            )
        self.directory.mkdir(parents=True, exist_ok=True)
        self._handle = self.path.open("a", encoding="utf-8")
        self.append(
            "header",
            schema=SCHEMA,
            config_digest=config_digest,
            created_at=time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        )
        for item in items:
            self.append("item", **item.payload())

    def reopen(self) -> None:
        """Append to an existing journal (the resume path)."""
        if not self.path.exists():
            raise FarmError(f"no sweep journal at {self.path}")
        self._handle = self.path.open("a", encoding="utf-8")

    def append(self, type_: str, **fields: Any) -> None:
        """Durably append one event line (flush + fsync)."""
        assert self._handle is not None, "journal not opened"
        line = json.dumps({"type": type_, **fields}, sort_keys=True)
        self._handle.write(line + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    # -- replay --------------------------------------------------------
    def replay(self) -> JournalState:
        """Fold the journal into current state (see module docstring)."""
        if not self.path.exists():
            raise FarmError(f"no sweep journal at {self.path}")
        raw_lines = self.path.read_text(encoding="utf-8").splitlines()
        events: list[dict] = []
        for number, raw in enumerate(raw_lines):
            if not raw.strip():
                continue
            try:
                events.append(json.loads(raw))
            except json.JSONDecodeError:
                if number == len(raw_lines) - 1:
                    # Torn final append: the scheduler died mid-write.
                    # Everything before it is consistent by construction.
                    continue
                raise FarmError(
                    f"{self.path}:{number + 1}: corrupt journal line"
                ) from None
        if not events or events[0].get("type") != "header":
            raise FarmError(f"{self.path}: missing journal header")
        header = events[0]
        if header.get("schema") != SCHEMA:
            raise FarmError(
                f"{self.path}: journal schema {header.get('schema')!r} "
                f"does not match {SCHEMA!r}"
            )
        state = JournalState(config_digest=str(header.get("config_digest")))
        for event in events[1:]:
            kind = event.get("type")
            item_id = event.get("id")
            if kind == "item":
                state.items.append(WorkItem.from_payload(event))
            elif kind == "lease":
                state.in_flight.add(item_id)
            elif kind == "done":
                state.done[item_id] = event.get("record", {})
                state.in_flight.discard(item_id)
            elif kind == "failed":
                state.in_flight.discard(item_id)
            elif kind == "requeued":
                state.attempts[item_id] = int(event.get("attempt", 0))
                state.in_flight.discard(item_id)
            elif kind == "quarantined":
                state.quarantined[item_id] = str(event.get("error", ""))
                state.in_flight.discard(item_id)
            # "resumed" and unknown forward-compatible types are ignored.
        return state
