"""The farm scheduler: worker pool, lease enforcement, crash recovery.

One scheduler process (the caller) owns the :class:`LeasedWorkQueue`, the
journal, and N worker processes.  Workers are deliberately dumb: receive a
work item, run :func:`repro.experiments.runner.run_single`, send back a
verdict, repeat.  All policy — retries, backoff, quarantine, lease expiry,
respawn — lives in the scheduler, so a worker can die (or be SIGKILLed by
the fault injector) at any instant without losing anything but the attempt
in flight.

Protocol
--------

* Each worker gets a private task queue; the scheduler pushes one
  ``{"item": ..., "attempt": n}`` message per lease and ``None`` to stop.
* All workers share one event queue back to the scheduler:
  ``("heartbeat", worker, None)`` from a daemon thread every
  ``lease_ttl / 4`` seconds, and ``("done" | "failed", worker, payload)``
  per finished attempt.
* A worker that stops heartbeating past the lease TTL is presumed wedged:
  the scheduler reaps it (:func:`repro.search.portfolio.reap_process` —
  SIGTERM, bounded grace, SIGKILL), expires the lease, requeues the item
  and spawns a replacement.  A worker that *dies* (nonzero exit, signal)
  is detected by liveness polling the same way.
* Respawned workers get fresh monotonic IDs — a lease can never be
  confused between a dead worker and its replacement, and one-shot
  injected faults (targeted at worker 0) fire exactly once.

Workers are forked, not spawned: the scheduler has already imported the
whole mapper stack, and fork keeps per-respawn latency in milliseconds.
"""

from __future__ import annotations

import dataclasses
import multiprocessing as mp
import queue as stdlib_queue
import threading
import time
from dataclasses import dataclass, field

from repro.exceptions import FarmError
from repro.farm.faults import FaultPlan
from repro.farm.journal import (
    SweepJournal,
    WorkItem,
    sweep_config_digest,
    work_item_id,
)
from repro.farm.leases import FarmStats, LeasedWorkQueue
from repro.farm.retry import TRANSIENT, RetryPolicy, classify_failure
from repro.search.portfolio import reap_process

__all__ = ["FarmConfig", "FarmOutcome", "materialise_items", "run_farm"]


@dataclass(frozen=True)
class FarmConfig:
    """Execution knobs of one farm run (not part of the sweep protocol)."""

    jobs: int = 2
    lease_ttl: float = 60.0
    policy: RetryPolicy = field(default_factory=RetryPolicy)
    #: Journal directory (required — the journal is the resume contract).
    journal_dir: str = ""
    #: Resume an existing journal instead of starting a fresh one.
    resume: bool = False
    faults: FaultPlan | None = None
    #: Scheduler event-wait quantum; also bounds lease-expiry latency.
    poll_interval: float = 0.1
    #: SIGTERM grace before a reap escalates to SIGKILL.
    reap_grace: float = 2.0


@dataclass
class FarmOutcome:
    """Everything the farm hands back to the sweep runner."""

    items: list[WorkItem]
    #: item id -> RunRecord as plain data, annotated with retries/resumed.
    records: dict[str, dict]
    #: item id -> final error message of poisoned items.
    quarantined: dict[str, str]
    #: item id -> retry attempts consumed (for items that needed any).
    attempts: dict[str, int]
    stats: FarmStats


def materialise_items(config) -> list[WorkItem]:
    """Expand a sweep configuration into its deterministic work-item list.

    Same nesting order as the serial sweep (scenario, kernel, size,
    mapper), so farm output sorted by item index is record-for-record the
    serial output.
    """
    from repro.experiments.runner import HOMOGENEOUS

    digest = sweep_config_digest(config)
    items: list[WorkItem] = []
    for scenario in (config.scenarios or (HOMOGENEOUS,)):
        for kernel in config.kernels:
            for size in config.sizes:
                for mapper in config.mappers:
                    items.append(
                        WorkItem(
                            index=len(items),
                            id=work_item_id(kernel, size, mapper, scenario, digest),
                            kernel=kernel,
                            size=size,
                            mapper=mapper,
                            scenario=scenario,
                        )
                    )
    return items


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------

def _heartbeat_loop(events, worker_id: int, interval: float, stop) -> None:
    while not stop.wait(interval):
        try:
            events.put(("heartbeat", worker_id, None))
        except Exception:  # pragma: no cover - scheduler already gone
            return


def _farm_worker(
    worker_id: int,
    tasks,
    events,
    config,
    faults: FaultPlan | None,
    heartbeat_interval: float,
) -> None:
    """Worker main: lease in, verdict out, until the ``None`` sentinel."""
    from repro.experiments.runner import run_single

    stop = threading.Event()
    threading.Thread(
        target=_heartbeat_loop,
        args=(events, worker_id, heartbeat_interval, stop),
        daemon=True,
    ).start()
    received = 0
    while True:
        task = tasks.get()
        if task is None:
            break
        received += 1
        if faults is not None:
            # May SIGKILL or SIGSTOP this very process — before any solving
            # or sending, so the lease is provably still open when we die.
            faults.on_item_received(worker_id, received)
        item = WorkItem.from_payload(task["item"])
        attempt = int(task["attempt"])
        try:
            if faults is not None:
                faults.check_backend(item.id, attempt)
            record = run_single(
                item.kernel, item.size, item.mapper, config, item.scenario
            )
            events.put(
                ("done", worker_id, {"id": item.id,
                                     "record": dataclasses.asdict(record)})
            )
        except BaseException as exc:
            events.put(
                (
                    "failed",
                    worker_id,
                    {
                        "id": item.id,
                        "error": f"{type(exc).__name__}: {exc}",
                        "kind": classify_failure(exc),
                    },
                )
            )
    stop.set()


# ---------------------------------------------------------------------------
# Scheduler side
# ---------------------------------------------------------------------------

@dataclass
class _Worker:
    id: int
    process: mp.Process
    tasks: object
    busy: bool = False
    stopping: bool = False


class _Pool:
    """The worker processes, with monotonic IDs across respawns."""

    def __init__(self, ctx, events, config, farm: FarmConfig) -> None:
        self._ctx = ctx
        self._events = events
        self._config = config
        self._farm = farm
        self._next_id = 0
        self.workers: dict[int, _Worker] = {}
        interval = max(0.02, min(1.0, farm.lease_ttl / 4.0))
        self._heartbeat_interval = interval

    def spawn(self) -> _Worker:
        worker_id = self._next_id
        self._next_id += 1
        tasks = self._ctx.SimpleQueue()
        process = self._ctx.Process(
            target=_farm_worker,
            args=(
                worker_id,
                tasks,
                self._events,
                self._config,
                self._farm.faults,
                self._heartbeat_interval,
            ),
            daemon=True,
        )
        process.start()
        worker = _Worker(id=worker_id, process=process, tasks=tasks)
        self.workers[worker_id] = worker
        return worker

    def idle(self) -> list[_Worker]:
        return [
            w for w in self.workers.values()
            if not w.busy and not w.stopping and w.process.is_alive()
        ]

    def remove(self, worker_id: int) -> _Worker | None:
        return self.workers.pop(worker_id, None)

    def shutdown(self, grace: float) -> None:
        for worker in self.workers.values():
            worker.stopping = True
            try:
                worker.tasks.put(None)
            except Exception:  # pragma: no cover - broken pipe to dead child
                pass
        for worker in self.workers.values():
            worker.process.join(timeout=grace)
        for worker in self.workers.values():
            if worker.process.is_alive():
                reap_process(worker.process, grace=0.5)
        self.workers.clear()


def run_farm(config, farm: FarmConfig, report=None) -> FarmOutcome:
    """Run one sweep through the fault-tolerant farm.

    ``report`` (optional) is called with each freshly completed record
    dict, in completion order — the runner uses it for ``--progress``.
    """
    if not farm.journal_dir:
        raise FarmError("the farm needs a journal directory")
    if farm.jobs < 1:
        raise FarmError(f"farm needs at least one worker, got jobs={farm.jobs}")

    start = time.perf_counter()
    digest = sweep_config_digest(config)
    items = materialise_items(config)
    journal = SweepJournal(farm.journal_dir)

    resumed_ids: set[str] = set()
    if farm.resume:
        state = journal.replay()
        if state.config_digest != digest:
            raise FarmError(
                f"journal at {journal.path} was written by a different "
                f"sweep configuration (or solver version); it cannot be "
                f"resumed with these settings"
            )
        journal.reopen()
        journal.append(
            "resumed",
            done=len(state.done),
            quarantined=len(state.quarantined),
            in_flight_expired=len(state.in_flight),
        )
    else:
        state = None
        journal.create(digest, items)

    queue = LeasedWorkQueue(
        items,
        policy=farm.policy,
        lease_ttl=farm.lease_ttl,
        journal=journal,
    )
    if state is not None:
        queue.stats.resumed = True
        for item_id, record in state.done.items():
            if item_id in queue.items:
                queue.preload_done(item_id, record)
                resumed_ids.add(item_id)
        for item_id, error in state.quarantined.items():
            if item_id in queue.items and item_id not in resumed_ids:
                queue.preload_quarantined(item_id, error)
        for item_id, attempts in state.attempts.items():
            if item_id in queue.items and item_id not in queue.results:
                queue.preload_attempts(item_id, attempts)

    ctx = mp.get_context("fork")
    events = ctx.Queue()
    pool = _Pool(ctx, events, config, farm)
    faults = farm.faults
    corruptions_left = (
        1 if faults is not None and faults.corrupt_cache_after is not None else 0
    )

    try:
        for _ in range(farm.jobs):
            if queue.outstanding > len(pool.workers):
                pool.spawn()

        while not queue.finished:
            _dispatch(pool, queue)
            event = _next_event(events, farm.poll_interval)
            if event is not None:
                kind, worker_id, payload = event
                if kind == "heartbeat":
                    queue.heartbeat(worker_id)
                elif kind == "done":
                    worker = pool.workers.get(worker_id)
                    if worker is not None:
                        worker.busy = False
                    if queue.complete(payload["id"], payload["record"]):
                        if report is not None:
                            report(payload["record"])
                        if (
                            corruptions_left
                            and faults.corrupt_cache_after is not None
                            and queue.stats.completed > faults.corrupt_cache_after
                            and getattr(config, "cache_dir", None)
                        ):
                            from repro.farm.faults import corrupt_newest_entry

                            corrupt_newest_entry(config.cache_dir)
                            corruptions_left = 0
                elif kind == "failed":
                    worker = pool.workers.get(worker_id)
                    if worker is not None:
                        worker.busy = False
                    queue.fail(payload["id"], payload["error"], payload["kind"])
            _reap_dead(pool, queue)
            _expire_leases(pool, queue, farm)
    finally:
        pool.shutdown(grace=farm.reap_grace)
        queue.stats.wall_s = time.perf_counter() - start
        journal.close()

    records: dict[str, dict] = {}
    for item_id, record in queue.results.items():
        annotated = dict(record)
        annotated["retries"] = queue.attempts_of(item_id)
        annotated["resumed"] = item_id in resumed_ids
        records[item_id] = annotated
    return FarmOutcome(
        items=items,
        records=records,
        quarantined=dict(queue.quarantined),
        attempts={
            item_id: queue.attempts_of(item_id)
            for item_id in queue.items
            if queue.attempts_of(item_id)
        },
        stats=queue.stats,
    )


def _dispatch(pool: _Pool, queue: LeasedWorkQueue) -> None:
    for worker in pool.idle():
        leased = queue.acquire(worker.id)
        if leased is None:
            return
        item, attempt = leased
        worker.tasks.put({"item": item.payload(), "attempt": attempt})
        worker.busy = True


def _next_event(events, poll_interval: float):
    try:
        return events.get(timeout=poll_interval)
    except stdlib_queue.Empty:
        return None


def _reap_dead(pool: _Pool, queue: LeasedWorkQueue) -> None:
    """Detect workers that died without delivering; requeue and respawn."""
    for worker in list(pool.workers.values()):
        if worker.process.is_alive():
            continue
        pool.remove(worker.id)
        worker.process.join()
        if worker.stopping:
            continue
        queue.stats.worker_crashes += 1
        item_id = queue.lease_of(worker.id)
        if item_id is not None:
            exitcode = worker.process.exitcode
            queue.fail(
                item_id,
                f"worker {worker.id} died (exit code {exitcode}) while "
                f"holding the lease",
                TRANSIENT,
            )
        if queue.outstanding > len(pool.workers):
            pool.spawn()
            queue.stats.worker_respawns += 1


def _expire_leases(pool: _Pool, queue: LeasedWorkQueue, farm: FarmConfig) -> None:
    """Revoke leases whose worker stopped heartbeating; reap the worker.

    A wedged (SIGSTOPped) worker is still *alive*, so liveness polling
    never catches it — only the missing heartbeats do.  ``reap_process``
    handles the stopped state: SIGTERM is not delivered to a stopped
    process, but the SIGKILL escalation is.
    """
    for lease in queue.expired():
        worker = pool.remove(lease.worker)
        queue.expire(lease)
        if worker is not None:
            reap_process(worker.process, grace=farm.reap_grace)
        if queue.outstanding > len(pool.workers):
            pool.spawn()
            queue.stats.worker_respawns += 1
