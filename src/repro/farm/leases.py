"""Leased work queue: the farm's in-scheduler state machine.

Pure bookkeeping — no processes, no threads, injectable clock — so the
lease/heartbeat/retry/quarantine protocol is unit-testable without ever
spawning a worker.  The scheduler (:mod:`repro.farm.scheduler`) drives it
from real events; the tests drive it from a fake clock.

Item lifecycle::

    pending --acquire--> leased --complete--> done
       ^                   |
       |                   +--fail(transient)--> pending (after backoff)
       +--expire (lease TTL without heartbeat)--+
                           |
                           +--fail(permanent) / retry cap -----> quarantined

Every transition is mirrored into the journal (when one is attached), so
the queue's in-memory state is always reconstructible from disk.
"""

from __future__ import annotations

import dataclasses
import heapq
import time
from dataclasses import dataclass, field

from repro.farm.journal import SweepJournal, WorkItem
from repro.farm.retry import PERMANENT, RetryPolicy


@dataclass
class FarmStats:
    """Counters for one farm run, surfaced through the sweep report."""

    items: int = 0
    completed: int = 0
    #: Items served straight from the journal on resume (never re-solved).
    skipped: int = 0
    #: Retry attempts scheduled (transient failures under the cap).
    retries: int = 0
    #: Transient failures observed (crashes, backend errors, expiries).
    transient_failures: int = 0
    #: Leases revoked because the worker stopped heartbeating.
    leases_expired: int = 0
    #: Worker processes that died without delivering a verdict.
    worker_crashes: int = 0
    #: Replacement workers spawned after crashes/reaps.
    worker_respawns: int = 0
    #: Items on the poison list (permanent failure or retry cap).
    quarantined: int = 0
    #: Whether this run resumed an earlier journal.
    resumed: bool = False
    wall_s: float = 0.0

    def to_dict(self) -> dict:
        """Plain-dict view for JSON serialisation."""
        return dataclasses.asdict(self)

    def summary(self) -> str:
        """One-line human summary of the farm run."""
        tags = [
            f"{self.completed}/{self.items} item(s) completed",
            f"{self.skipped} resumed from journal",
            f"{self.retries} retr{'y' if self.retries == 1 else 'ies'}",
            f"{self.leases_expired} lease(s) expired",
            f"{self.worker_crashes} worker crash(es)",
            f"{self.quarantined} quarantined",
        ]
        return ", ".join(tags)


@dataclass
class Lease:
    """One item checked out to one worker."""

    item: WorkItem
    worker: int
    attempt: int
    granted: float
    last_heartbeat: float = field(default=0.0)

    def deadline(self, ttl: float) -> float:
        """When the lease expires if no further heartbeat arrives."""
        return max(self.granted, self.last_heartbeat) + ttl


class LeasedWorkQueue:
    """Work items under leases, retries and quarantine (see module doc)."""

    def __init__(
        self,
        items: list[WorkItem],
        policy: RetryPolicy | None = None,
        lease_ttl: float = 60.0,
        journal: SweepJournal | None = None,
        clock=time.monotonic,
    ) -> None:
        self.policy = policy or RetryPolicy()
        self.lease_ttl = lease_ttl
        self.journal = journal
        self.clock = clock
        self.stats = FarmStats(items=len(items))
        self.items = {item.id: item for item in items}
        if len(self.items) != len(items):
            raise ValueError("duplicate work-item IDs")
        #: (ready_at, index) heap of items available for lease.
        self._ready: list[tuple[float, int, str]] = []
        self._leases: dict[str, Lease] = {}
        self._by_worker: dict[int, str] = {}
        self._attempts: dict[str, int] = {}
        self.results: dict[str, dict] = {}
        self.quarantined: dict[str, str] = {}
        #: Last failure message per item (diagnostics for the report).
        self.failures: dict[str, str] = {}
        now = self.clock()
        for item in items:
            heapq.heappush(self._ready, (now, item.index, item.id))

    # -- resume preload ------------------------------------------------
    def preload_done(self, item_id: str, record: dict) -> None:
        """Mark an item finished from a replayed journal (never re-run)."""
        self._drop_pending(item_id)
        self.results[item_id] = record
        self.stats.skipped += 1

    def preload_quarantined(self, item_id: str, error: str) -> None:
        """Mark an item quarantined before the run starts (journal resume)."""
        self._drop_pending(item_id)
        self.quarantined[item_id] = error
        self.failures[item_id] = error
        self.stats.quarantined += 1

    def preload_attempts(self, item_id: str, attempts: int) -> None:
        """Seed an item's attempt count from a resumed journal."""
        self._attempts[item_id] = attempts
        self.stats.retries += attempts

    def _drop_pending(self, item_id: str) -> None:
        self._ready = [entry for entry in self._ready if entry[2] != item_id]
        heapq.heapify(self._ready)

    # -- lease protocol ------------------------------------------------
    def acquire(self, worker: int, now: float | None = None):
        """Lease the next ready item to ``worker``.

        Returns ``(item, attempt)`` or ``None`` when nothing is ready
        (items may still be backing off — see :meth:`next_ready_in`).
        """
        now = self.clock() if now is None else now
        if worker in self._by_worker:
            raise ValueError(f"worker {worker} already holds a lease")
        if not self._ready or self._ready[0][0] > now:
            return None
        _ready_at, _index, item_id = heapq.heappop(self._ready)
        item = self.items[item_id]
        attempt = self._attempts.get(item_id, 0)
        lease = Lease(item=item, worker=worker, attempt=attempt, granted=now)
        self._leases[item_id] = lease
        self._by_worker[worker] = item_id
        if self.journal:
            self.journal.append("lease", id=item_id, worker=worker, attempt=attempt)
        return item, attempt

    def heartbeat(self, worker: int, now: float | None = None) -> None:
        """Record life from a worker, extending its lease (if any)."""
        item_id = self._by_worker.get(worker)
        if item_id is None:
            return
        lease = self._leases.get(item_id)
        if lease is not None and lease.worker == worker:
            lease.last_heartbeat = self.clock() if now is None else now

    def lease_of(self, worker: int) -> str | None:
        """The item a worker currently holds, if any."""
        return self._by_worker.get(worker)

    def expired(self, now: float | None = None) -> list[Lease]:
        """Leases whose TTL elapsed without a heartbeat (not yet revoked)."""
        now = self.clock() if now is None else now
        return [
            lease
            for lease in self._leases.values()
            if lease.deadline(self.lease_ttl) < now
        ]

    # -- outcomes ------------------------------------------------------
    def complete(self, item_id: str, record: dict) -> bool:
        """Accept a finished record; idempotent under duplicate delivery.

        A slow worker whose lease was expired (and whose item was already
        re-run) may still deliver a verdict — first result wins, later
        duplicates are dropped.
        """
        self._release(item_id)
        if item_id in self.results or item_id in self.quarantined:
            return False
        self._drop_pending(item_id)
        self.results[item_id] = record
        self.stats.completed += 1
        if self.journal:
            self.journal.append("done", id=item_id, record=record)
        return True

    def fail(self, item_id: str, error: str, kind: str, now: float | None = None) -> str:
        """Handle a failed attempt: backoff-requeue or quarantine.

        Returns the item's new state: ``"requeued"`` or ``"quarantined"``
        (or ``"ignored"`` for duplicate/stale reports).
        """
        now = self.clock() if now is None else now
        self._release(item_id)
        if item_id in self.results or item_id in self.quarantined:
            return "ignored"
        self.failures[item_id] = error
        attempt = self._attempts.get(item_id, 0)
        if kind != PERMANENT:
            self.stats.transient_failures += 1
        if self.journal:
            self.journal.append(
                "failed", id=item_id, error=error, kind=kind, attempt=attempt
            )
        if kind == PERMANENT or self.policy.exhausted(attempt):
            self.quarantined[item_id] = error
            self.stats.quarantined += 1
            if self.journal:
                self.journal.append("quarantined", id=item_id, error=error)
            return "quarantined"
        delay = self.policy.backoff(attempt, key=item_id)
        self._attempts[item_id] = attempt + 1
        self.stats.retries += 1
        item = self.items[item_id]
        heapq.heappush(self._ready, (now + delay, item.index, item_id))
        if self.journal:
            self.journal.append(
                "requeued", id=item_id, attempt=attempt + 1,
                backoff_s=round(delay, 3),
            )
        return "requeued"

    def expire(self, lease: Lease, now: float | None = None) -> str:
        """Revoke one expired lease and requeue/quarantine its item."""
        self.stats.leases_expired += 1
        return self.fail(
            lease.item.id,
            f"lease expired after {self.lease_ttl:.1f}s without a heartbeat "
            f"(worker {lease.worker})",
            kind="transient",
            now=now,
        )

    def _release(self, item_id: str) -> None:
        lease = self._leases.pop(item_id, None)
        if lease is not None and self._by_worker.get(lease.worker) == item_id:
            del self._by_worker[lease.worker]

    # -- progress ------------------------------------------------------
    def attempts_of(self, item_id: str) -> int:
        """Retry attempts consumed by one item so far."""
        return self._attempts.get(item_id, 0)

    @property
    def finished(self) -> bool:
        """Whether every item is either completed or quarantined."""
        return len(self.results) + len(self.quarantined) >= len(self.items)

    def next_ready_in(self, now: float | None = None) -> float | None:
        """Seconds until the earliest backing-off item is ready (None when
        the pending set is empty)."""
        now = self.clock() if now is None else now
        if not self._ready:
            return None
        return max(0.0, self._ready[0][0] - now)

    @property
    def outstanding(self) -> int:
        """Items neither finished nor quarantined."""
        return len(self.items) - len(self.results) - len(self.quarantined)
