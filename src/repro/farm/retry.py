"""Retry taxonomy and backoff policy for the sweep farm.

A failed work item is either worth retrying or poison:

* **Transient** — the failure says nothing about the item itself: a worker
  process crashed (OOM kill, operator SIGKILL), an external solver binary
  was briefly unavailable (:class:`~repro.sat.backend.BackendUnavailableError`),
  a cache entry was corrupted mid-read, a lease expired because a worker
  wedged.  Retried under exponential backoff with jitter, up to the
  policy's cap.
* **Permanent** — re-running cannot change the answer:
  :class:`~repro.exceptions.MappingError` (the kernel's opcode histogram
  cannot fit the fabric at any II).  Quarantined immediately; the farm
  moves on.

The backoff jitter is *deterministic* per (item, attempt) — seeded from
the item's content hash — so two runs of the same sweep schedule retries
identically and the chaos suite can assert byte-identical outcomes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.exceptions import MappingError

#: Failure kinds carried in journal/queue events.
TRANSIENT = "transient"
PERMANENT = "permanent"


def classify_failure(exc: BaseException) -> str:
    """Map an exception from a work item to a retry class.

    Only :class:`MappingError` is provably permanent — the mapper raises it
    when the kernel cannot fit the fabric regardless of budgets.  Everything
    else (backend launch failures, corrupted cache reads, bugs in a worker)
    is treated as transient and bounded by the retry cap: a persistent
    "transient" failure still quarantines after ``max_retries`` attempts,
    it just gets the benefit of the doubt first.
    """
    if isinstance(exc, MappingError):
        return PERMANENT
    return TRANSIENT


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with deterministic jitter and a retry cap.

    ``max_retries`` counts *re-runs*: an item is attempted at most
    ``1 + max_retries`` times before quarantine.
    """

    max_retries: int = 3
    backoff_base: float = 0.25
    backoff_factor: float = 2.0
    backoff_cap: float = 30.0
    #: Additional fraction of the delay added as jitter, decorrelating
    #: retry storms when many items fail at once.
    jitter: float = 0.25

    def backoff(self, attempt: int, key: str = "") -> float:
        """Delay in seconds before retry number ``attempt`` (0-based).

        Deterministic for a fixed (key, attempt): the jitter RNG is seeded
        from both, so a resumed or repeated sweep schedules identically.
        """
        delay = min(
            self.backoff_cap,
            self.backoff_base * self.backoff_factor ** max(0, attempt),
        )
        if self.jitter > 0:
            fraction = random.Random(f"{key}:{attempt}").random()
            delay += delay * self.jitter * fraction
        return delay

    def exhausted(self, attempt: int) -> bool:
        """True when attempt number ``attempt`` (0-based) was the last."""
        return attempt >= self.max_retries
