"""Partition-and-stitch mapping for fabrics too large for one SAT call.

A monolithic encoding of a big kernel on an 8x8 or 16x16 fabric produces a
formula whose size (placement literals x slots x neighbourhood clauses) puts
it out of reach of the per-attempt budgets that keep the mapping loop
responsive.  This package assembles a mapping from *several* SAT problems
instead of one:

1. :mod:`repro.partition.cutter` min-cuts the DFG into balanced partitions
   along an edge-cut heuristic, keeping every recurrence cycle (SCC) intact
   inside one partition so the quotient graph over partitions is acyclic.
2. :mod:`repro.partition.regions` slices the fabric into contiguous row
   strips, one spatial region per partition, each with its own sub-CGRA and
   border rows facing the neighbouring regions.
3. Each partition is mapped as an independent SAT problem onto its region
   (via the encoder's placement-domain restriction), with cut-edge endpoints
   pinned to the region borders facing their counterpart.
4. :mod:`repro.partition.stitcher` shifts the per-partition schedules so
   every cut edge has time to travel, threads ROUTE chains through free
   (PE, cycle) slots across region boundaries, and runs a legality pass —
   ``Mapping.violations()`` plus the cycle-accurate simulator — over the
   stitched whole.

:class:`repro.partition.mapper.PartitionMapper` orchestrates the pipeline,
negotiating a common II across partitions and repairing stitch failures by
relaxing border pins or bumping the II.
"""

from repro.partition.cutter import CutEdge, PartitionPlan, partition_dfg
from repro.partition.mapper import (
    PartitionConfig,
    PartitionMapper,
    PartitionOutcome,
)
from repro.partition.regions import Region, boundary_domains, slice_fabric
from repro.partition.stitcher import StitchError, StitchResult, stitch

__all__ = [
    "CutEdge",
    "PartitionPlan",
    "partition_dfg",
    "Region",
    "slice_fabric",
    "boundary_domains",
    "StitchError",
    "StitchResult",
    "stitch",
    "PartitionConfig",
    "PartitionMapper",
    "PartitionOutcome",
]
