"""Stitch per-partition mappings into one legal whole-fabric mapping.

Each partition arrives as an independently solved mapping of its sub-DFG on
its region's sub-CGRA, all at the same (negotiated) II.  Stitching:

1. **Translate** local PE indices to global ones (regions are disjoint, so
   translated placements can never collide).
2. **Offset** every partition's schedule by a flat-time shift so each cut
   value has time to be produced, travel its route, and arrive before the
   consumer reads it.  Shifting a whole partition by a constant preserves
   its internal legality (flat times translate; kernel cycles permute by a
   bijection), and because the cutter guarantees all cut edges point
   forward in partition index, offsets are computed in one forward pass.
3. **Route** each cut edge whose endpoints are not already neighbours:
   a chain of single-cycle ROUTE nodes is threaded through free (PE,
   kernel-cycle) slots, found by a time-expanded Dijkstra over (PE, flat
   time) states.  Values persist in register files, so a hop may wait for
   a free slot — waiting costs time, not occupancy.  Waiting does cost
   *registers*, though: a value that sits for many II windows needs one
   live copy per window, so relay hops are appended until no single chain
   value spans more than one II — trading free compute slots for register
   pressure so the downstream allocation stays colourable.
4. **Rebuild** the DFG: cut edges with routes are replaced by the chain
   ``src -> r1 -> ... -> rk -> dst`` (loop-carried distance carried by the
   final hop, so golden-model semantics are exact: each ROUTE forwards its
   single operand).
5. **Legality pass**: the stitched mapping must pass
   :meth:`Mapping.violations` — completeness, capabilities, slot
   exclusivity, neighbourhood and modulo timing over the *stitched* DFG.
   Any violation raises :class:`StitchError`; a stitched mapping is never
   silently accepted.

The simulator replay (golden-model validation) lives one level up in
:class:`repro.partition.mapper.PartitionMapper`, which also owns the
repair loop around this module (bump II / relax borders and retry).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.cgra.architecture import CGRA
from repro.core.mapping import Mapping, Placement
from repro.dfg.graph import DFG, Opcode
from repro.exceptions import MappingError
from repro.partition.cutter import PartitionPlan
from repro.partition.regions import Region

#: Extra flat-time slack rounds the stitcher may grant a partition whose
#: cut values cannot be routed inside the original offset estimate.
MAX_OFFSET_ROUNDS = 4


class StitchError(MappingError):
    """A partitioned mapping could not be assembled into a legal whole."""


@dataclass
class StitchResult:
    """A stitched mapping plus the bookkeeping the caller reports."""

    mapping: Mapping
    #: Flat-time shift applied to each partition's schedule.
    offsets: list[int]
    #: ROUTE nodes inserted per cut edge: ``(src, dst) -> [route node ids]``.
    route_chains: dict[tuple[int, int], list[int]] = field(default_factory=dict)
    #: Offset-relaxation rounds the router needed (0 = first estimate held).
    repair_rounds: int = 0

    @property
    def num_route_nodes(self) -> int:
        """Total ROUTE nodes inserted across all cut edges."""
        return sum(len(chain) for chain in self.route_chains.values())

    def summary(self) -> str:
        """One line for CLI output."""
        return (
            f"stitched {len(self.offsets)} partitions: offsets "
            f"{self.offsets}, {self.num_route_nodes} route node(s), "
            f"{self.repair_rounds} repair round(s)"
        )


def stitch(
    dfg: DFG,
    cgra: CGRA,
    plan: PartitionPlan,
    regions: list[Region],
    partial_mappings: list[Mapping],
    ii: int,
) -> StitchResult:
    """Assemble per-partition mappings into one legal mapping on ``cgra``.

    ``partial_mappings[p]`` maps partition ``p``'s sub-DFG onto
    ``regions[p].sub_cgra`` at ``ii``.  Returns a :class:`StitchResult`
    whose mapping covers the *stitched* DFG (original nodes plus ROUTE
    chains) and passes the full legality check; raises :class:`StitchError`
    when routing runs out of free slots or the result is illegal.
    """
    if len(partial_mappings) != len(regions) or len(regions) != plan.num_partitions:
        raise StitchError(
            f"plan/regions/mappings disagree: {plan.num_partitions} partitions, "
            f"{len(regions)} regions, {len(partial_mappings)} mappings"
        )
    for partial in partial_mappings:
        if partial.ii != ii:
            raise StitchError(
                f"partition mapping {partial.dfg.name!r} solved at II="
                f"{partial.ii}, expected the negotiated II={ii}"
            )

    # Global placements before offsetting: node -> (global pe, flat time).
    base_pe: dict[int, int] = {}
    base_flat: dict[int, int] = {}
    for region, partial in zip(regions, partial_mappings):
        for node_id, placement in partial.placements.items():
            base_pe[node_id] = region.to_global[placement.pe]
            base_flat[node_id] = placement.flat_time(ii)

    missing = set(dfg.node_ids) - set(base_pe)
    if missing:
        raise StitchError(f"partition mappings leave nodes {sorted(missing)} unplaced")

    offsets = _initial_offsets(dfg, cgra, plan, base_pe, base_flat, ii)

    for repair_round in range(MAX_OFFSET_ROUNDS + 1):
        routed = _route_all(dfg, cgra, plan, base_pe, base_flat, offsets, ii)
        if isinstance(routed, _RouteShortfall):
            # A cut value missed its deadline by ``shortfall`` cycles: grant
            # the destination partition (and everything downstream, via the
            # forward recompute) that much more slack and re-route from
            # scratch.
            if repair_round == MAX_OFFSET_ROUNDS:
                raise StitchError(
                    f"cut edge {routed.src}->{routed.dst} unroutable at II="
                    f"{ii} even after {MAX_OFFSET_ROUNDS} offset-relaxation "
                    f"rounds (short by {routed.shortfall} cycle(s)); "
                    "a larger II is needed"
                )
            for partition in range(routed.dst_partition, plan.num_partitions):
                offsets[partition] += routed.shortfall
            continue
        routed.repair_rounds = repair_round
        routed.mapping.dfg.validate()
        violations = routed.mapping.violations()
        if violations:
            raise StitchError(
                "stitched mapping is illegal: " + "; ".join(violations[:5])
            )
        return routed
    raise StitchError("unreachable")  # pragma: no cover


@dataclass
class _RouteShortfall:
    """A route that missed its consumer's deadline (retry with more slack)."""

    src: int
    dst: int
    dst_partition: int
    shortfall: int


def _initial_offsets(
    dfg: DFG,
    cgra: CGRA,
    plan: PartitionPlan,
    base_pe: dict[int, int],
    base_flat: dict[int, int],
    ii: int,
) -> list[int]:
    """First-estimate flat-time shift per partition (forward pass).

    For every cut edge ``u -> v`` the consumer needs
    ``t_v + d*II >= t_u + latency(u) + hops`` where ``hops`` is the minimum
    number of ROUTE nodes (``hop_distance - 1``); the destination
    partition's offset absorbs any deficit.  Cut edges always point to a
    higher partition index, so one pass in index order suffices.
    """
    offsets = [0] * plan.num_partitions
    by_dst: list[list] = [[] for _ in range(plan.num_partitions)]
    for cut in plan.cut_edges:
        by_dst[cut.dst_partition].append(cut)
    for partition in range(plan.num_partitions):
        need = 0
        for cut in by_dst[partition]:
            edge = cut.edge
            min_routes = max(0, cgra.distance(base_pe[edge.src], base_pe[edge.dst]) - 1)
            produced = (
                base_flat[edge.src]
                + offsets[cut.src_partition]
                + dfg.node(edge.src).latency
                + min_routes
            )
            consumed = base_flat[edge.dst] + edge.distance * ii
            need = max(need, produced - consumed)
        offsets[partition] = need
    return offsets


def _route_all(
    dfg: DFG,
    cgra: CGRA,
    plan: PartitionPlan,
    base_pe: dict[int, int],
    base_flat: dict[int, int],
    offsets: list[int],
    ii: int,
):
    """Thread ROUTE chains for every cut edge; build the stitched mapping.

    Returns a :class:`StitchResult` on success or a :class:`_RouteShortfall`
    telling the caller which partition needs more schedule slack.
    """
    flat: dict[int, int] = {
        node_id: base_flat[node_id] + offsets[plan.partition_of(node_id)]
        for node_id in base_flat
    }
    # Kernel-slot occupancy over the whole fabric (original nodes first;
    # route nodes claim slots as they are placed).
    occupied: set[tuple[int, int]] = {
        (base_pe[node_id], flat[node_id] % ii) for node_id in flat
    }

    stitched = DFG(name=f"{dfg.name}@part{plan.num_partitions}")
    for node in dfg.nodes:
        stitched.add_node(node.node_id, node.opcode, node.name, node.constant,
                          node.latency)

    next_node_id = max(dfg.node_ids, default=-1) + 1
    route_chains: dict[tuple[int, int], list[int]] = {}
    route_placements: dict[int, tuple[int, int]] = {}  # node -> (pe, flat t)
    replaced: set[tuple[int, int, int, int]] = set()

    # Deterministic routing order: nearest deadlines first, ties by ids.
    cuts = sorted(
        plan.cut_edges,
        key=lambda cut: (
            flat[cut.edge.dst] + cut.edge.distance * ii,
            cut.edge.src,
            cut.edge.dst,
        ),
    )
    for cut in cuts:
        edge = cut.edge
        src_pe, dst_pe = base_pe[edge.src], base_pe[edge.dst]
        deadline = flat[edge.dst] + edge.distance * ii
        ready = flat[edge.src] + dfg.node(edge.src).latency
        if cgra.distance(src_pe, dst_pe) > 1:
            path = _find_route(cgra, occupied, src_pe, dst_pe, ready,
                               deadline, ii)
            if isinstance(path, int):
                return _RouteShortfall(
                    src=edge.src, dst=edge.dst,
                    dst_partition=cut.dst_partition, shortfall=path,
                )
        else:
            # Endpoints are already neighbours; the value only needs relays
            # when it would otherwise wait out multiple II windows.
            path = []
        # Claim the found hops before relay insertion scans for free slots,
        # or a relay could land on its own chain's (PE, cycle).
        occupied.update((pe, t % ii) for pe, t in path)
        _insert_relays(cgra, occupied, path, src_pe, dst_pe, ready,
                       deadline, ii)
        if not path:
            continue  # the original edge stands
        replaced.add((edge.src, edge.dst, edge.distance, edge.operand_index))
        chain: list[int] = []
        for pe, t in path:
            occupied.add((pe, t % ii))
            route_id = next_node_id
            next_node_id += 1
            stitched.add_node(
                route_id, Opcode.ROUTE,
                name=f"rt{edge.src}_{edge.dst}_{len(chain)}",
            )
            route_placements[route_id] = (pe, t)
            prev = chain[-1] if chain else edge.src
            stitched.add_edge(prev, route_id, 0, 0)
            chain.append(route_id)
        stitched.add_edge(chain[-1], edge.dst, edge.distance, edge.operand_index)
        route_chains.setdefault((edge.src, edge.dst), []).extend(chain)

    for edge in dfg.edges:
        key = (edge.src, edge.dst, edge.distance, edge.operand_index)
        if key not in replaced:
            stitched.add_edge(edge.src, edge.dst, edge.distance,
                              edge.operand_index)

    mapping = Mapping(dfg=stitched, cgra=cgra, ii=ii)
    for node_id in dfg.node_ids:
        t = flat[node_id]
        mapping.placements[node_id] = Placement(node_id, base_pe[node_id],
                                                t % ii, t // ii)
    for route_id, (pe, t) in route_placements.items():
        mapping.placements[route_id] = Placement(route_id, pe, t % ii, t // ii)
    return StitchResult(
        mapping=mapping, offsets=list(offsets), route_chains=route_chains,
    )


def _insert_relays(
    cgra: CGRA,
    occupied: set[tuple[int, int]],
    path: list[tuple[int, int]],
    src_pe: int,
    dst_pe: int,
    ready: int,
    deadline: int,
    ii: int,
) -> None:
    """Append relay hops so no chain value waits longer than one II window.

    A value that sits in a register file for ``w`` flat cycles needs about
    ``w / II`` simultaneously-live copies, so a cut value parked at the
    last hop until a far deadline is exactly what overflows a border PE's
    register file.  Relays break the wait into <= II-cycle legs: each one
    re-materialises the value on the same PE (or a neighbour still adjacent
    to the consumer) at a later kernel slot.  Saturated slots end the
    extension early — the long wait then stays and register allocation gets
    to veto it, which the II-negotiation loop treats like any other repair.

    ``path`` is extended in place; slots are claimed in ``occupied``.
    """
    if path:
        anchor_pe, anchor_t = path[-1]
        available = anchor_t + 1
    else:
        anchor_pe, available = src_pe, ready
    routable = set(cgra.capable_pes("alu"))
    while deadline + 1 - available > ii:
        candidates = [anchor_pe] + [
            nbr
            for nbr in cgra.neighbours(anchor_pe, include_self=False)
            if nbr in routable and cgra.distance(nbr, dst_pe) <= 1
        ]
        slot: tuple[int, int] | None = None
        # Latest slot inside the window makes the most progress per relay.
        for t in range(available + ii - 1, available - 1, -1):
            for pe in candidates:
                if (pe, t % ii) not in occupied:
                    slot = (pe, t)
                    break
            if slot is not None:
                break
        if slot is None or slot[1] + 1 <= available:
            break  # no progress possible; leave the long wait in place
        path.append(slot)
        occupied.add((slot[0], slot[1] % ii))
        anchor_pe, available = slot[0], slot[1] + 1


def _find_route(
    cgra: CGRA,
    occupied: set[tuple[int, int]],
    src_pe: int,
    dst_pe: int,
    ready: int,
    deadline: int,
    ii: int,
) -> list[tuple[int, int]] | int:
    """Earliest-arrival route from ``src_pe``'s neighbourhood to ``dst_pe``.

    Time-expanded Dijkstra over ``(PE, flat time)``: the value is readable
    from ``src_pe`` at ``ready``; a ROUTE node on a neighbouring PE may pick
    it up at any free slot at or after that (values persist in register
    files, so waiting is free) and re-exposes it one cycle later.  The
    search succeeds when the value is readable from a neighbour of
    ``dst_pe`` (or ``dst_pe`` itself) no later than ``deadline``.  Returns
    the ``(pe, flat_time)`` chain of ROUTE placements, or — when no chain
    meets the deadline — the integer shortfall (extra cycles needed, always
    >= 1) for the caller's offset-relaxation loop.

    Route hops claim real kernel slots, so only ALU-capable PEs qualify.
    """
    routable = set(cgra.capable_pes("alu"))
    # earliest[pe] = earliest flat time the value is readable *from* pe.
    earliest: dict[int, int] = {src_pe: ready}
    parents: dict[int, tuple[int, int] | None] = {src_pe: None}
    queue: list[tuple[int, int]] = [(ready, src_pe)]
    best_finish: int | None = None
    best_pe: int | None = None
    while queue:
        available, pe = heapq.heappop(queue)
        if available > earliest.get(pe, float("inf")):
            continue
        if cgra.distance(pe, dst_pe) <= 1:
            if best_finish is None or available < best_finish:
                best_finish, best_pe = available, pe
            # Dijkstra pops in earliest-availability order; the first goal
            # reached is optimal.
            break
        for nbr in cgra.neighbours(pe, include_self=False):
            if nbr not in routable:
                continue
            # Earliest free slot at nbr at or after ``available``: scanning
            # one full II window covers every kernel cycle.
            slot_time: int | None = None
            for t in range(available, available + ii):
                if (nbr, t % ii) not in occupied:
                    slot_time = t
                    break
            if slot_time is None:
                continue  # nbr fully occupied at every kernel cycle
            arrival = slot_time + 1
            if arrival < earliest.get(nbr, float("inf")):
                earliest[nbr] = arrival
                parents[nbr] = (pe, slot_time)
                heapq.heappush(queue, (arrival, nbr))
    if best_pe is None:
        # No chain exists at any time — the fabric region is saturated.
        # Report a one-II shortfall: more offset shifts the window, and the
        # caller's rounds are bounded before it escalates to a larger II.
        return ii
    if best_finish > deadline:
        return best_finish - deadline
    # Walk parents back from best_pe to src_pe, collecting ROUTE slots.
    path: list[tuple[int, int]] = []
    cursor = best_pe
    while parents[cursor] is not None:
        prev_pe, slot_time = parents[cursor]
        path.append((cursor, slot_time))
        cursor = prev_pe
    path.reverse()
    return path
