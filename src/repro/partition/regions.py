"""Fabric regions: contiguous row strips, one per partition.

A partitioned mapping confines each partition to a spatial *region* of the
fabric so the per-partition SAT problems are independent (disjoint PE sets)
and cut values flow between adjacent strips.  Regions are horizontal strips
of consecutive rows, allocated proportionally to partition sizes; each
region exposes a *sub-CGRA* (the strip as a standalone fabric, preserving
the per-PE capability classes) plus the local<->global PE index maps the
stitcher uses to reassemble the whole.

Border pinning: the first row of a strip faces the previous region, the
last row faces the next one.  :func:`boundary_domains` turns a
:class:`~repro.partition.cutter.PartitionPlan` into the per-node
placement-domain restriction the encoder consumes — cut-edge producers are
pinned to the border facing the consumer's region and vice versa, which
bounds the route distance the stitcher must budget into the II.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cgra.architecture import CGRA
from repro.cgra.topology import Topology
from repro.exceptions import ArchitectureError
from repro.partition.cutter import PartitionPlan


@dataclass(frozen=True)
class Region:
    """One contiguous row strip of the fabric, owned by one partition."""

    partition: int
    row_start: int
    row_end: int  # exclusive
    #: Global PE indices of the strip, row-major (== local index order).
    to_global: tuple[int, ...]
    #: The strip as a standalone fabric (same cols, capability classes
    #: preserved), used as the per-partition SAT target.
    sub_cgra: CGRA

    @property
    def num_rows(self) -> int:
        """Rows in the strip."""
        return self.row_end - self.row_start

    @property
    def num_pes(self) -> int:
        """PEs in the strip."""
        return len(self.to_global)

    def to_local(self, global_pe: int) -> int:
        """Local (sub-CGRA) index of a global PE inside this strip."""
        return self._from_global[global_pe]

    @property
    def _from_global(self) -> dict[int, int]:
        return {pe: local for local, pe in enumerate(self.to_global)}

    def north_border(self) -> tuple[int, ...]:
        """Global PEs of the strip's first row (faces the previous region)."""
        return self.to_global[: self.sub_cgra.cols]

    def south_border(self) -> tuple[int, ...]:
        """Global PEs of the strip's last row (faces the next region)."""
        return self.to_global[-self.sub_cgra.cols:]

    def local_row(self, border: tuple[int, ...]) -> tuple[int, ...]:
        """Translate a tuple of global PE indices into local ones."""
        table = self._from_global
        return tuple(table[pe] for pe in border)


def slice_fabric(cgra: CGRA, weights: list[int]) -> list[Region]:
    """Cut ``cgra`` into row strips proportional to ``weights``.

    ``weights[p]`` is the node count of partition ``p``; each strip gets at
    least one row and the leftover rows go to the largest remainders.  Only
    the mesh topology is supported — a torus strip would wrap values across
    the cut, and the sub-CGRA could not model that locally.  Raises
    :class:`ArchitectureError` when the fabric has fewer rows than regions.
    """
    if cgra.topology is not Topology.MESH:
        raise ArchitectureError(
            f"partitioned mapping requires a mesh fabric, got "
            f"{cgra.topology.value!r} (a sliced torus strip would wrap "
            "values across the region boundary)"
        )
    num_regions = len(weights)
    if num_regions < 1:
        raise ArchitectureError("need at least one region")
    if cgra.rows < num_regions:
        raise ArchitectureError(
            f"cannot slice {cgra.rows} rows into {num_regions} regions; "
            "reduce --partitions or use a taller fabric"
        )
    total = max(1, sum(weights))
    # Largest-remainder apportionment with a one-row floor.
    shares = [max(1.0, cgra.rows * weight / total) for weight in weights]
    rows = [max(1, int(share)) for share in shares]
    while sum(rows) > cgra.rows:
        rows[rows.index(max(rows))] -= 1
    remainders = sorted(
        range(num_regions), key=lambda p: shares[p] - rows[p], reverse=True
    )
    index = 0
    while sum(rows) < cgra.rows:
        rows[remainders[index % num_regions]] += 1
        index += 1

    regions: list[Region] = []
    row_start = 0
    for partition, strip_rows in enumerate(rows):
        row_end = row_start + strip_rows
        to_global = tuple(
            row * cgra.cols + col
            for row in range(row_start, row_end)
            for col in range(cgra.cols)
        )
        class_map = (
            tuple(cgra.class_map[pe] for pe in to_global)
            if cgra.class_map
            else ()
        )
        sub_cgra = CGRA(
            rows=strip_rows,
            cols=cgra.cols,
            registers_per_pe=cgra.registers_per_pe,
            topology=cgra.topology,
            pe_classes=cgra.pe_classes,
            class_map=class_map,
            name=f"{cgra.name}#r{row_start}-{row_end - 1}",
        )
        regions.append(
            Region(
                partition=partition,
                row_start=row_start,
                row_end=row_end,
                to_global=to_global,
                sub_cgra=sub_cgra,
            )
        )
        row_start = row_end
    return regions


def boundary_domains(
    plan: PartitionPlan, regions: list[Region]
) -> list[tuple[tuple[int, tuple[int, ...]], ...]]:
    """Per-partition placement-domain restrictions pinning cut endpoints.

    For each partition, returns the ``placement_domains`` tuple (in *local*
    sub-CGRA PE indices) confining every node with a cut edge to the border
    row(s) facing its counterparts: producers sending to a later region sit
    on the strip's last row, consumers receiving from an earlier region on
    its first row, and nodes doing both may use either border (never an
    empty intersection).  Nodes without cut edges are unrestricted within
    their strip.
    """
    needs_south: list[set[int]] = [set() for _ in regions]
    needs_north: list[set[int]] = [set() for _ in regions]
    for cut in plan.cut_edges:
        needs_south[cut.src_partition].add(cut.edge.src)
        needs_north[cut.dst_partition].add(cut.edge.dst)

    domains: list[tuple[tuple[int, tuple[int, ...]], ...]] = []
    for region in regions:
        south = set(region.local_row(region.south_border()))
        north = set(region.local_row(region.north_border()))
        entries: list[tuple[int, tuple[int, ...]]] = []
        partition = region.partition
        for node_id in sorted(needs_south[partition] | needs_north[partition]):
            wants_south = node_id in needs_south[partition]
            wants_north = node_id in needs_north[partition]
            if wants_south and wants_north:
                allowed = tuple(sorted(north | south))
            elif wants_south:
                allowed = tuple(sorted(south))
            else:
                allowed = tuple(sorted(north))
            entries.append((node_id, allowed))
        domains.append(tuple(entries))
    return domains
