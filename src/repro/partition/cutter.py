"""DFG partitioning: balanced edge-cut with recurrence cycles kept intact.

The partitioner condenses the dependency graph (forward *and* loop-carried
edges) into its strongly connected components, so every recurrence cycle —
the structures that pin the RecMII — lives inside exactly one supernode.
Supernodes are packed into ``k`` consecutive chunks of a topological order,
which guarantees the quotient graph over partitions is acyclic with every
cut edge pointing from a lower partition index to a higher one; the stitcher
relies on that to compute schedule offsets in a single forward pass.

Two strategies are offered: ``"topo"`` stops after the balanced packing,
``"refine"`` follows it with a Kernighan-Lin-style boundary pass that moves
supernodes between adjacent partitions whenever that strictly reduces the
number of cut edges without breaking precedence or the balance tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.dfg.graph import DFG, DFGEdge
from repro.exceptions import DFGError

#: Recognised partitioning strategies, in CLI-choices order.
PARTITION_STRATEGIES: tuple[str, ...] = ("topo", "refine")

#: A partition may grow to this multiple of the ideal size during
#: refinement before a cut-reducing move is rejected for balance.
BALANCE_TOLERANCE = 1.5


@dataclass(frozen=True)
class CutEdge:
    """A DFG edge whose endpoints land in different partitions."""

    edge: DFGEdge
    src_partition: int
    dst_partition: int

    def to_dict(self) -> dict:
        """Plain-data form for reports and journals."""
        return {
            "src": self.edge.src,
            "dst": self.edge.dst,
            "distance": self.edge.distance,
            "src_partition": self.src_partition,
            "dst_partition": self.dst_partition,
        }


@dataclass
class PartitionPlan:
    """The outcome of partitioning one DFG.

    ``partitions[p]`` lists the node ids of partition ``p`` (ascending);
    ``assignment`` is the inverse map.  ``cut_edges`` carries every edge
    crossing a partition boundary — all of them point forward
    (``src_partition < dst_partition``), which :meth:`validate` asserts.
    """

    dfg_name: str
    strategy: str
    partitions: list[list[int]]
    assignment: dict[int, int]
    cut_edges: list[CutEdge] = field(default_factory=list)
    #: Strongly connected components with more than one node (recurrence
    #: structures the cut must not split), for reporting.
    num_recurrence_components: int = 0

    @property
    def num_partitions(self) -> int:
        """Number of partitions in the plan."""
        return len(self.partitions)

    @property
    def cut_size(self) -> int:
        """Number of edges crossing a partition boundary."""
        return len(self.cut_edges)

    @property
    def balance(self) -> float:
        """Largest partition size over the ideal (1.0 = perfectly even)."""
        total = sum(len(part) for part in self.partitions)
        ideal = total / max(1, len(self.partitions))
        return max(len(part) for part in self.partitions) / max(ideal, 1e-9)

    def partition_of(self, node_id: int) -> int:
        """The partition index holding ``node_id``."""
        return self.assignment[node_id]

    def validate(self, dfg: DFG) -> None:
        """Check the plan's structural invariants against its DFG.

        Every node appears in exactly one partition, every cut edge points
        forward in partition index (the acyclic-quotient property), and no
        recurrence cycle is split across partitions.
        """
        seen: set[int] = set()
        for part in self.partitions:
            for node_id in part:
                if node_id in seen:
                    raise DFGError(f"node {node_id} in two partitions")
                seen.add(node_id)
        if seen != set(dfg.node_ids):
            missing = sorted(set(dfg.node_ids) - seen)
            raise DFGError(f"plan does not cover nodes {missing}")
        for cut in self.cut_edges:
            if cut.src_partition >= cut.dst_partition:
                raise DFGError(
                    f"cut edge {cut.edge.src}->{cut.edge.dst} points backwards "
                    f"({cut.src_partition} -> {cut.dst_partition}); the "
                    "quotient graph must be acyclic"
                )
        for component in _strongly_connected(dfg):
            owners = {self.assignment[node_id] for node_id in component}
            if len(owners) > 1:
                raise DFGError(
                    f"recurrence component {sorted(component)} split across "
                    f"partitions {sorted(owners)}"
                )

    def to_dict(self) -> dict:
        """Plain-data summary used by the CLI and the bench panel."""
        return {
            "dfg": self.dfg_name,
            "strategy": self.strategy,
            "partitions": [list(part) for part in self.partitions],
            "cut_edges": [cut.to_dict() for cut in self.cut_edges],
            "cut_size": self.cut_size,
            "balance": round(self.balance, 3),
            "num_recurrence_components": self.num_recurrence_components,
        }

    def summary(self) -> str:
        """One line for CLI output."""
        sizes = "/".join(str(len(part)) for part in self.partitions)
        return (
            f"{self.num_partitions} partitions ({sizes} nodes, "
            f"{self.cut_size} cut edges, balance {self.balance:.2f}, "
            f"strategy {self.strategy})"
        )


def _strongly_connected(dfg: DFG) -> list[set[int]]:
    """SCCs of the full dependency graph (back edges included)."""
    graph = nx.DiGraph()
    graph.add_nodes_from(dfg.node_ids)
    graph.add_edges_from((edge.src, edge.dst) for edge in dfg.edges)
    return [set(component) for component in nx.strongly_connected_components(graph)]


def partition_dfg(
    dfg: DFG, num_partitions: int, strategy: str = "topo"
) -> PartitionPlan:
    """Split ``dfg`` into ``num_partitions`` balanced, stitchable partitions.

    Recurrence cycles are kept intact (SCC granularity) and the quotient
    graph over partitions is acyclic by construction.  ``strategy`` selects
    the edge-cut heuristic: ``"topo"`` packs a topological order of the SCC
    condensation into consecutive balanced chunks; ``"refine"`` additionally
    runs a boundary-refinement pass that trades supernodes between adjacent
    partitions to shrink the cut.  Raises :class:`DFGError` for an
    unsatisfiable request (more partitions than SCC supernodes).
    """
    if strategy not in PARTITION_STRATEGIES:
        raise DFGError(
            f"unknown partition strategy {strategy!r}; "
            f"choose from {', '.join(PARTITION_STRATEGIES)}"
        )
    if num_partitions < 1:
        raise DFGError(f"need at least one partition, got {num_partitions}")
    dfg.validate()

    graph = nx.DiGraph()
    graph.add_nodes_from(dfg.node_ids)
    graph.add_edges_from((edge.src, edge.dst) for edge in dfg.edges)
    condensation = nx.condensation(graph)
    supernodes: list[set[int]] = [
        set(condensation.nodes[scc_id]["members"])
        for scc_id in nx.topological_sort(condensation)
    ]
    if num_partitions > len(supernodes):
        raise DFGError(
            f"cannot cut {dfg.name!r} into {num_partitions} partitions: only "
            f"{len(supernodes)} recurrence-respecting supernodes exist"
        )

    # Balanced consecutive packing: close a chunk once the cumulative node
    # count reaches its proportional share, while leaving enough supernodes
    # for the remaining partitions.
    total_nodes = dfg.num_nodes
    owner_of_super: list[int] = []
    current = 0
    packed_nodes = 0
    for index, supernode in enumerate(supernodes):
        remaining_supers = len(supernodes) - index
        remaining_parts = num_partitions - current
        share = total_nodes * (current + 1) / num_partitions
        if (
            current < num_partitions - 1
            and packed_nodes >= share
            and remaining_supers > remaining_parts - 1
        ):
            current += 1
        # Never strand a later partition without supernodes: partitions
        # current..k-1 still need one supernode each from the remainder.
        current = max(current, num_partitions - remaining_supers)
        owner_of_super.append(current)
        packed_nodes += len(supernode)

    if strategy == "refine":
        owner_of_super = _refine(supernodes, owner_of_super, num_partitions, dfg)

    assignment: dict[int, int] = {}
    for supernode, owner in zip(supernodes, owner_of_super):
        for node_id in supernode:
            assignment[node_id] = owner
    partitions: list[list[int]] = [[] for _ in range(num_partitions)]
    for node_id in sorted(assignment):
        partitions[assignment[node_id]].append(node_id)

    cut_edges = [
        CutEdge(edge, assignment[edge.src], assignment[edge.dst])
        for edge in dfg.edges
        if assignment[edge.src] != assignment[edge.dst]
    ]
    plan = PartitionPlan(
        dfg_name=dfg.name,
        strategy=strategy,
        partitions=partitions,
        assignment=assignment,
        cut_edges=cut_edges,
        num_recurrence_components=sum(
            1 for component in supernodes if len(component) > 1
        ),
    )
    plan.validate(dfg)
    return plan


def _refine(
    supernodes: list[set[int]],
    owners: list[int],
    num_partitions: int,
    dfg: DFG,
) -> list[int]:
    """Kernighan-Lin-style boundary pass over the supernode assignment.

    Repeatedly moves one supernode to an adjacent partition when the move
    strictly reduces the number of cut edges, keeps every partition
    non-empty and inside the balance tolerance, and preserves precedence
    (predecessor supernodes stay in partitions <= the target, successors in
    partitions >= it).  Terminates when a full pass makes no move.
    """
    owners = list(owners)
    node_super: dict[int, int] = {}
    for index, supernode in enumerate(supernodes):
        for node_id in supernode:
            node_super[node_id] = index
    preds: list[set[int]] = [set() for _ in supernodes]
    succs: list[set[int]] = [set() for _ in supernodes]
    inter_edges: list[tuple[int, int]] = []
    for edge in dfg.edges:
        a, b = node_super[edge.src], node_super[edge.dst]
        if a != b:
            preds[b].add(a)
            succs[a].add(b)
            inter_edges.append((a, b))

    total_nodes = sum(len(supernode) for supernode in supernodes)
    max_size = max(
        1.0, BALANCE_TOLERANCE * total_nodes / num_partitions
    )
    sizes = [0] * num_partitions
    counts = [0] * num_partitions
    for index, owner in enumerate(owners):
        sizes[owner] += len(supernodes[index])
        counts[owner] += 1

    def cut_delta(index: int, target: int) -> int:
        """Change in cut size if supernode ``index`` moves to ``target``."""
        delta = 0
        for a, b in inter_edges:
            if a != index and b != index:
                continue
            other = owners[b] if a == index else owners[a]
            before = (owners[index] != other)
            if a == index:
                after = (target != other)
            else:
                after = (other != target)
            delta += int(after) - int(before)
        return delta

    for _ in range(8):  # bounded passes; each strictly improves the cut
        moved = False
        for index in range(len(supernodes)):
            here = owners[index]
            for target in (here - 1, here + 1):
                if not 0 <= target < num_partitions:
                    continue
                low = max((owners[p] for p in preds[index]), default=0)
                high = min(
                    (owners[s] for s in succs[index]), default=num_partitions - 1
                )
                if not low <= target <= high:
                    continue
                if counts[here] <= 1:
                    continue
                if sizes[target] + len(supernodes[index]) > max_size:
                    continue
                if cut_delta(index, target) >= 0:
                    continue
                sizes[here] -= len(supernodes[index])
                sizes[target] += len(supernodes[index])
                counts[here] -= 1
                counts[target] += 1
                owners[index] = target
                moved = True
                break
        if not moved:
            break
    return owners
