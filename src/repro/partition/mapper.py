"""Partitioned mapping driver: cut, solve per region, negotiate an II, stitch.

:class:`PartitionMapper` is the partition-and-stitch counterpart of
:class:`repro.core.mapper.SatMapItMapper`.  One mapping is assembled from
several SAT problems:

* the DFG is cut into balanced partitions (recurrence cycles intact) and
  the fabric into matching row strips;
* the **II negotiation** opens at the largest per-partition minimum II and
  climbs: at each candidate II every partition is solved *at exactly that
  II* on its own sub-fabric (a partition that could do better locally is
  re-solved at the common II — partitions share one kernel clock);
* each sub-solve pins cut-edge endpoints to its region's border rows; a
  partition that is UNSAT under the pins is retried unpinned at the same II
  before the II is bumped (**stitch-repair loop**, stage one);
* solved partitions are stitched (offsets + ROUTE chains + legality pass);
  a stitch failure bumps the II and retries (**stage two**) — a larger II
  means more free kernel slots for routes;
* the stitched mapping is register-allocated and replayed through the
  cycle-accurate simulator against the golden model, so a returned mapping
  is correct end to end.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace

from repro.cgra.architecture import CGRA
from repro.cgra.capabilities import effective_minimum_ii
from repro.core.mapper import MapperConfig, MappingOutcome, SatMapItMapper
from repro.core.mapping import Mapping
from repro.core.regalloc import RegisterAllocation, allocate_registers
from repro.dfg.graph import DFG
from repro.exceptions import ArchitectureError, DFGError, MappingError
from repro.partition.cutter import PartitionPlan, partition_dfg
from repro.partition.regions import Region, boundary_domains, slice_fabric
from repro.partition.stitcher import StitchError, StitchResult, stitch


@dataclass(frozen=True)
class PartitionConfig:
    """Knobs of the partition-and-stitch mapping loop."""

    #: Number of DFG partitions / fabric regions.
    num_partitions: int = 2
    #: Edge-cut heuristic (see :data:`repro.partition.cutter.PARTITION_STRATEGIES`).
    strategy: str = "topo"
    #: Pin cut-edge endpoints to region border rows.  Pinning bounds route
    #: lengths (and therefore the stitch offsets); partitions infeasible
    #: under the pins are automatically retried unpinned.
    pin_borders: bool = True
    #: Candidate IIs are tried up to this cap before the run fails.
    max_ii: int = 50
    #: Wall-clock budget for the whole partitioned run (``None`` = none).
    timeout: float | None = None
    #: Per-(II, slack) attempt budget forwarded to every sub-solve.  A strip
    #: attempt that exceeds it is treated as inconclusive and the negotiation
    #: bumps the II instead of burning the whole run budget on one hard
    #: refutation — the anytime behaviour that makes big fabrics tractable.
    #: ``None`` disables the cap (a ``base.attempt_time_limit`` still
    #: applies if set).
    attempt_time_limit: float | None = 15.0
    #: Loop iterations replayed through the cycle-accurate simulator for the
    #: end-to-end validation of the stitched mapping (0 skips validation).
    validate_iterations: int = 3
    #: Configuration template for the per-partition SAT sub-solves; the
    #: driver overrides the II bounds, timeout and placement domains per
    #: solve and disables heuristic seeding (not domain-aware).
    base: MapperConfig = field(default_factory=MapperConfig)


@dataclass
class PartitionOutcome:
    """Overall result of a partitioned mapping run."""

    success: bool
    dfg_name: str
    cgra_name: str
    num_partitions: int
    ii: int | None = None
    #: The stitched whole-fabric mapping (its DFG is the *stitched* graph —
    #: original nodes plus ROUTE chains).
    mapping: Mapping | None = None
    register_allocation: RegisterAllocation | None = None
    plan: PartitionPlan | None = None
    regions: list[Region] = field(default_factory=list)
    #: Per-partition sub-solve outcomes of the *accepted* II round.
    partition_outcomes: list[MappingOutcome] = field(default_factory=list)
    stitch: StitchResult | None = None
    #: Partitions whose border pins had to be relaxed at the accepted II.
    border_relaxed: list[int] = field(default_factory=list)
    #: Candidate IIs tried (negotiation + repair rounds).
    ii_rounds: int = 0
    #: Why the last II round failed, per round (negotiation trace).
    repair_log: list[str] = field(default_factory=list)
    minimum_ii: int = 1
    total_time: float = 0.0
    timed_out: bool = False
    #: Whether the stitched mapping was replayed through the simulator
    #: against the golden model (and passed — a failure raises instead).
    validated: bool = False

    @property
    def final_status(self) -> str:
        """``mapped`` / ``timeout`` / ``failed`` (mirrors MappingOutcome)."""
        if self.success:
            return "mapped"
        if self.timed_out:
            return "timeout"
        return "failed"

    def summary(self) -> str:
        """One-line summary used by the CLI."""
        if self.success:
            assert self.stitch is not None
            checked = ", simulator-validated" if self.validated else ""
            return (
                f"{self.dfg_name} on {self.cgra_name}: II={self.ii} via "
                f"{self.num_partitions} partitions (MII={self.minimum_ii}, "
                f"{self.ii_rounds} II round(s), "
                f"{self.stitch.num_route_nodes} route node(s), "
                f"{self.total_time:.2f}s{checked})"
            )
        return (
            f"{self.dfg_name} on {self.cgra_name}: {self.final_status} after "
            f"{self.ii_rounds} II round(s) ({self.total_time:.2f}s)"
        )


class PartitionMapper:
    """Maps a DFG by partitioning it across fabric regions and stitching."""

    name = "SAT-MapIt-partition"

    def __init__(self, config: PartitionConfig | None = None) -> None:
        self.config = config or PartitionConfig()

    # ------------------------------------------------------------------
    def map(self, dfg: DFG, cgra: CGRA) -> PartitionOutcome:
        """Find a common II at which all partitions map, and stitch them.

        Raises :class:`MappingError` for structurally impossible requests
        (more partitions than recurrence-respecting supernodes or fabric
        rows, non-mesh topology); budget exhaustion returns a failed
        outcome instead.
        """
        config = self.config
        start = time.perf_counter()
        dfg.validate()
        try:
            plan = partition_dfg(dfg, config.num_partitions, config.strategy)
            regions = slice_fabric(cgra, [len(p) for p in plan.partitions])
        except (ArchitectureError, DFGError) as exc:
            raise MappingError(str(exc)) from exc

        sub_dfgs = [self._sub_dfg(dfg, plan, p) for p in range(plan.num_partitions)]
        pin_domains = boundary_domains(plan, regions) if config.pin_borders else [
            () for _ in regions
        ]

        outcome = PartitionOutcome(
            success=False,
            dfg_name=dfg.name,
            cgra_name=cgra.name,
            num_partitions=plan.num_partitions,
            plan=plan,
            regions=regions,
        )

        # Opening bid of the II negotiation: no partition can beat its own
        # (capability-aware) minimum II, and all share one kernel clock.
        per_partition_mii = [
            effective_minimum_ii(sub, region.sub_cgra)
            for sub, region in zip(sub_dfgs, regions)
        ]
        outcome.minimum_ii = max(per_partition_mii)

        ii = outcome.minimum_ii
        use_pins = config.pin_borders
        while ii <= config.max_ii:
            if self._out_of_time(start):
                outcome.timed_out = True
                break
            outcome.ii_rounds += 1
            partials: list[Mapping] = []
            round_outcomes: list[MappingOutcome] = []
            relaxed: list[int] = []
            failed_reason: str | None = None
            for p, (sub, region) in enumerate(zip(sub_dfgs, regions)):
                domains = pin_domains[p] if use_pins else ()
                sub_outcome = self._solve_partition(sub, region, ii,
                                                    domains, start)
                if (
                    not sub_outcome.success
                    and domains
                    and not sub_outcome.timed_out
                ):
                    # Repair stage one: the border pins may be what makes
                    # this II infeasible — retry the same II unpinned.
                    sub_outcome = self._solve_partition(sub, region, ii, (), start)
                    if sub_outcome.success:
                        relaxed.append(p)
                if not sub_outcome.success:
                    round_outcomes.append(sub_outcome)
                    if sub_outcome.timed_out:
                        outcome.timed_out = True
                        failed_reason = f"partition {p} timed out at II={ii}"
                    else:
                        failed_reason = f"partition {p} infeasible at II={ii}"
                    break
                round_outcomes.append(sub_outcome)
                assert sub_outcome.mapping is not None
                partials.append(sub_outcome.mapping)
            if failed_reason is not None:
                outcome.repair_log.append(failed_reason)
                if outcome.timed_out:
                    outcome.partition_outcomes = round_outcomes
                    break
                ii, use_pins = ii + 1, config.pin_borders
                continue

            try:
                stitched = stitch(dfg, cgra, plan, regions, partials, ii)
            except StitchError as exc:
                # Repair stage two: a larger II adds a kernel-cycle row of
                # free slots everywhere — retry the negotiation there.
                outcome.repair_log.append(f"stitch failed at II={ii}: {exc}")
                ii, use_pins = ii + 1, config.pin_borders
                continue

            allocation = allocate_registers(
                stitched.mapping.dfg, cgra, stitched.mapping,
                config.base.neighbour_register_file_access,
            )
            if not allocation.success:
                outcome.repair_log.append(
                    f"register allocation failed at II={ii}"
                    f"{' (pinned)' if use_pins else ''}: "
                    f"{allocation.failure_reason}"
                )
                if use_pins:
                    # Repair stage three: pinning concentrates cut values on
                    # the few border PEs, whose register files overflow first
                    # — retry the same II with placements spread across the
                    # whole strip before paying for a larger II.
                    use_pins = False
                else:
                    ii, use_pins = ii + 1, config.pin_borders
                continue
            stitched.mapping.apply_allocation(allocation)

            if config.validate_iterations > 0:
                self._validate(stitched, allocation, config.validate_iterations)
                outcome.validated = True

            outcome.success = True
            outcome.ii = ii
            outcome.mapping = stitched.mapping
            outcome.register_allocation = allocation
            outcome.partition_outcomes = round_outcomes
            outcome.stitch = stitched
            outcome.border_relaxed = (
                relaxed if use_pins else list(range(plan.num_partitions))
            )
            break

        outcome.total_time = time.perf_counter() - start
        return outcome

    # ------------------------------------------------------------------
    def _solve_partition(
        self,
        sub_dfg: DFG,
        region: Region,
        ii: int,
        domains: tuple[tuple[int, tuple[int, ...]], ...],
        start: float,
    ) -> MappingOutcome:
        """Solve one partition at exactly ``ii`` on its region sub-fabric."""
        attempt_limit = self.config.base.attempt_time_limit
        if self.config.attempt_time_limit is not None:
            attempt_limit = (
                self.config.attempt_time_limit
                if attempt_limit is None
                else min(attempt_limit, self.config.attempt_time_limit)
            )
        config = replace(
            self.config.base,
            max_ii=ii,
            timeout=self._remaining_time(start),
            attempt_time_limit=attempt_limit,
            placement_domains=domains or None,
            seed_heuristic=False,
        )
        return SatMapItMapper(config).map(sub_dfg, region.sub_cgra, start_ii=ii)

    @staticmethod
    def _sub_dfg(dfg: DFG, plan: PartitionPlan, partition: int) -> DFG:
        """The induced sub-DFG of one partition (internal edges only)."""
        members = set(plan.partitions[partition])
        sub = DFG(name=f"{dfg.name}/p{partition}")
        for node in dfg.nodes:
            if node.node_id in members:
                sub.add_node(node.node_id, node.opcode, node.name,
                             node.constant, node.latency)
        for edge in dfg.edges:
            if edge.src in members and edge.dst in members:
                sub.add_edge(edge.src, edge.dst, edge.distance,
                             edge.operand_index)
        sub.validate()
        return sub

    @staticmethod
    def _validate(
        stitched: StitchResult,
        allocation: RegisterAllocation,
        iterations: int,
    ) -> None:
        """Replay the stitched mapping through the cycle-accurate simulator.

        The simulator checks every data transfer against the golden-model
        interpreter; a failure here means the stitcher's legality pass has a
        hole, so it raises :class:`StitchError` loudly instead of bumping
        the II.
        """
        from repro.simulator import CGRASimulator

        result = CGRASimulator(stitched.mapping, allocation).run(iterations)
        if not result.success:
            raise StitchError(
                "stitched mapping failed simulator validation: "
                + "; ".join(result.errors[:5])
            )

    # ------------------------------------------------------------------
    def _out_of_time(self, start: float) -> bool:
        timeout = self.config.timeout
        return timeout is not None and (time.perf_counter() - start) >= timeout

    def _remaining_time(self, start: float) -> float | None:
        timeout = self.config.timeout
        if timeout is None:
            return None
        return max(0.01, timeout - (time.perf_counter() - start))
