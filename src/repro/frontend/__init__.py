"""Loop-kernel front-end.

The paper extracts loop DFGs from C sources through a custom LLVM pass.  This
reproduction replaces that machinery with a small, self-contained loop
language: a kernel is written as a sequence of assignments over scalars and
arrays, the implicit loop index is ``i``, and the front-end lowers the body to
a :class:`repro.dfg.graph.DFG` with SSA-style value numbering and loop-carried
dependencies for scalars that are read before they are written (accumulators)
and for the induction variable itself.

Example::

    from repro.frontend import compile_loop

    dfg = compile_loop('''
        t = a[i] + b[i]
        acc = acc + t * 3
        c[i] = t >> 2
    ''', name="saxpy_like")
"""

from repro.frontend.builder import compile_loop, DFGBuilder
from repro.frontend.lexer import Token, TokenKind, tokenize
from repro.frontend.parser import Parser, parse_program

__all__ = [
    "compile_loop",
    "DFGBuilder",
    "tokenize",
    "Token",
    "TokenKind",
    "Parser",
    "parse_program",
]
