"""Tokenizer for the loop-kernel language."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.exceptions import FrontendError


class TokenKind(str, Enum):
    """Lexical category of one loop-language token."""

    IDENT = "ident"
    NUMBER = "number"
    OPERATOR = "operator"
    ASSIGN = "assign"
    LPAREN = "lparen"
    RPAREN = "rparen"
    LBRACKET = "lbracket"
    RBRACKET = "rbracket"
    QUESTION = "question"
    COLON = "colon"
    NEWLINE = "newline"
    END = "end"


@dataclass(frozen=True)
class Token:
    """One token with its source position (for error messages)."""

    kind: TokenKind
    text: str
    line: int
    column: int

    def __repr__(self) -> str:
        return f"Token({self.kind.value}, {self.text!r}, {self.line}:{self.column})"


#: Multi-character operators must be listed before their prefixes.
_OPERATORS = ("<<", ">>", "==", "!=", "<=", ">=", "+", "-", "*", "/", "%",
              "&", "|", "^", "<", ">")


def tokenize(source: str) -> list[Token]:
    """Convert loop-kernel source text into a token stream.

    Comments start with ``#`` and run to the end of the line.  Newlines and
    semicolons both act as statement separators (emitted as NEWLINE tokens).
    """
    tokens: list[Token] = []
    line = 1
    column = 1
    index = 0
    length = len(source)

    def push(kind: TokenKind, text: str) -> None:
        tokens.append(Token(kind, text, line, column))

    while index < length:
        char = source[index]
        if char == "#":
            while index < length and source[index] != "\n":
                index += 1
            continue
        if char == "\n" or char == ";":
            push(TokenKind.NEWLINE, char)
            index += 1
            if char == "\n":
                line += 1
                column = 1
            else:
                column += 1
            continue
        if char in " \t\r":
            index += 1
            column += 1
            continue
        if char.isdigit():
            start = index
            while index < length and source[index].isdigit():
                index += 1
            push(TokenKind.NUMBER, source[start:index])
            column += index - start
            continue
        if char.isalpha() or char == "_":
            start = index
            while index < length and (source[index].isalnum() or source[index] == "_"):
                index += 1
            push(TokenKind.IDENT, source[start:index])
            column += index - start
            continue
        if char == "(":
            push(TokenKind.LPAREN, char)
            index += 1
            column += 1
            continue
        if char == ")":
            push(TokenKind.RPAREN, char)
            index += 1
            column += 1
            continue
        if char == "[":
            push(TokenKind.LBRACKET, char)
            index += 1
            column += 1
            continue
        if char == "]":
            push(TokenKind.RBRACKET, char)
            index += 1
            column += 1
            continue
        if char == "?":
            push(TokenKind.QUESTION, char)
            index += 1
            column += 1
            continue
        if char == ":":
            push(TokenKind.COLON, char)
            index += 1
            column += 1
            continue
        matched = False
        for operator in _OPERATORS:
            if source.startswith(operator, index):
                if operator == "=" :
                    break
                push(TokenKind.OPERATOR, operator)
                index += len(operator)
                column += len(operator)
                matched = True
                break
        if matched:
            continue
        if char == "=":
            # Could be '==' (handled above) or assignment.
            push(TokenKind.ASSIGN, "=")
            index += 1
            column += 1
            continue
        raise FrontendError(f"unexpected character {char!r} at line {line}, column {column}")

    push(TokenKind.END, "")
    return tokens
