"""Abstract syntax tree for the loop-kernel language."""

from __future__ import annotations

from dataclasses import dataclass


class Expr:
    """Base class of expression nodes."""


@dataclass(frozen=True)
class Number(Expr):
    """Integer literal."""

    value: int


@dataclass(frozen=True)
class Variable(Expr):
    """Scalar variable reference (including the loop index ``i``)."""

    name: str


@dataclass(frozen=True)
class ArrayRef(Expr):
    """Array element read, e.g. ``a[i + 1]``."""

    array: str
    index: Expr


@dataclass(frozen=True)
class BinaryOp(Expr):
    """Binary operation, e.g. ``lhs + rhs``."""

    operator: str
    lhs: Expr
    rhs: Expr


@dataclass(frozen=True)
class Select(Expr):
    """Ternary selection ``condition ? if_true : if_false``."""

    condition: Expr
    if_true: Expr
    if_false: Expr


class Statement:
    """Base class of statement nodes."""


@dataclass(frozen=True)
class ScalarAssign(Statement):
    """Assignment to a scalar variable."""

    name: str
    value: Expr


@dataclass(frozen=True)
class ArrayAssign(Statement):
    """Assignment to an array element (a store)."""

    array: str
    index: Expr
    value: Expr


@dataclass(frozen=True)
class Program:
    """A full loop body: an ordered list of statements."""

    statements: tuple[Statement, ...]

    @property
    def assigned_scalars(self) -> set[str]:
        """Names of scalar variables written anywhere in the body."""
        return {
            statement.name
            for statement in self.statements
            if isinstance(statement, ScalarAssign)
        }
