"""Recursive-descent parser for the loop-kernel language.

Grammar (statements are separated by newlines or semicolons)::

    program    := statement*
    statement  := IDENT '=' expr
                | IDENT '[' expr ']' '=' expr
    expr       := ternary
    ternary    := or_expr ('?' expr ':' expr)?
    or_expr    := xor_expr ('|' xor_expr)*
    xor_expr   := and_expr ('^' and_expr)*
    and_expr   := cmp_expr ('&' cmp_expr)*
    cmp_expr   := shift_expr (('<' | '>' | '==' | '!=' | '<=' | '>=') shift_expr)*
    shift_expr := add_expr (('<<' | '>>') add_expr)*
    add_expr   := mul_expr (('+' | '-') mul_expr)*
    mul_expr   := unary (('*' | '/' | '%') unary)*
    unary      := '-' unary | primary
    primary    := NUMBER | IDENT | IDENT '[' expr ']' | '(' expr ')'
"""

from __future__ import annotations

from repro.exceptions import FrontendError
from repro.frontend.ast_nodes import (
    ArrayAssign,
    ArrayRef,
    BinaryOp,
    Expr,
    Number,
    Program,
    ScalarAssign,
    Select,
    Statement,
    Variable,
)
from repro.frontend.lexer import Token, TokenKind, tokenize


class Parser:
    """Recursive-descent parser over a token stream."""

    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._position = 0

    # ------------------------------------------------------------------
    # Token helpers
    # ------------------------------------------------------------------
    def _peek(self) -> Token:
        return self._tokens[self._position]

    def _advance(self) -> Token:
        token = self._tokens[self._position]
        if token.kind is not TokenKind.END:
            self._position += 1
        return token

    def _expect(self, kind: TokenKind, text: str | None = None) -> Token:
        token = self._peek()
        if token.kind is not kind or (text is not None and token.text != text):
            expected = text or kind.value
            raise FrontendError(
                f"expected {expected!r} but found {token.text!r} "
                f"at line {token.line}, column {token.column}"
            )
        return self._advance()

    def _match_operator(self, *operators: str) -> Token | None:
        token = self._peek()
        if token.kind is TokenKind.OPERATOR and token.text in operators:
            return self._advance()
        return None

    def _skip_newlines(self) -> None:
        while self._peek().kind is TokenKind.NEWLINE:
            self._advance()

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def parse_program(self) -> Program:
        statements: list[Statement] = []
        self._skip_newlines()
        while self._peek().kind is not TokenKind.END:
            statements.append(self._parse_statement())
            self._skip_newlines()
        if not statements:
            raise FrontendError("loop body contains no statements")
        return Program(tuple(statements))

    def _parse_statement(self) -> Statement:
        name_token = self._expect(TokenKind.IDENT)
        if self._peek().kind is TokenKind.LBRACKET:
            self._advance()
            index = self._parse_expr()
            self._expect(TokenKind.RBRACKET)
            self._expect(TokenKind.ASSIGN)
            value = self._parse_expr()
            return ArrayAssign(array=name_token.text, index=index, value=value)
        self._expect(TokenKind.ASSIGN)
        value = self._parse_expr()
        return ScalarAssign(name=name_token.text, value=value)

    # ------------------------------------------------------------------
    # Expressions (precedence climbing, lowest first)
    # ------------------------------------------------------------------
    def _parse_expr(self) -> Expr:
        return self._parse_ternary()

    def _parse_ternary(self) -> Expr:
        condition = self._parse_binary(0)
        if self._peek().kind is TokenKind.QUESTION:
            self._advance()
            if_true = self._parse_expr()
            self._expect(TokenKind.COLON)
            if_false = self._parse_expr()
            return Select(condition, if_true, if_false)
        return condition

    _PRECEDENCE: tuple[tuple[str, ...], ...] = (
        ("|",),
        ("^",),
        ("&",),
        ("==", "!=", "<", ">", "<=", ">="),
        ("<<", ">>"),
        ("+", "-"),
        ("*", "/", "%"),
    )

    def _parse_binary(self, level: int) -> Expr:
        if level >= len(self._PRECEDENCE):
            return self._parse_unary()
        expr = self._parse_binary(level + 1)
        while True:
            token = self._match_operator(*self._PRECEDENCE[level])
            if token is None:
                return expr
            rhs = self._parse_binary(level + 1)
            expr = BinaryOp(token.text, expr, rhs)

    def _parse_unary(self) -> Expr:
        token = self._match_operator("-")
        if token is not None:
            operand = self._parse_unary()
            return BinaryOp("-", Number(0), operand)
        return self._parse_primary()

    def _parse_primary(self) -> Expr:
        token = self._peek()
        if token.kind is TokenKind.NUMBER:
            self._advance()
            return Number(int(token.text))
        if token.kind is TokenKind.IDENT:
            self._advance()
            if self._peek().kind is TokenKind.LBRACKET:
                self._advance()
                index = self._parse_expr()
                self._expect(TokenKind.RBRACKET)
                return ArrayRef(token.text, index)
            return Variable(token.text)
        if token.kind is TokenKind.LPAREN:
            self._advance()
            expr = self._parse_expr()
            self._expect(TokenKind.RPAREN)
            return expr
        raise FrontendError(
            f"unexpected token {token.text!r} at line {token.line}, column {token.column}"
        )


def parse_program(source: str) -> Program:
    """Parse loop-kernel source text into a :class:`Program`."""
    return Parser(tokenize(source)).parse_program()
