"""Lowering of loop-kernel ASTs to data-flow graphs.

The builder performs SSA-style value numbering over a single loop body:

* Every expression evaluates to a DFG node; identical constant literals are
  shared, everything else gets a fresh node.
* Scalar variables written by the body and read *before* their first write
  are loop-carried accumulators: their first read becomes a PHI node whose
  incoming back edge (distance 1) is added once the defining statement has
  been lowered.
* Scalar variables that are only read are loop invariants, modelled as CONST
  nodes (they would live in a register that is initialised by the prologue).
* Array reads and writes become LOAD/STORE nodes fed by their index
  expression.  Memory dependencies between a store and subsequent loads of
  the same array are added conservatively (distance 0 within an iteration,
  distance 1 from a store to the loads of the next iteration).
* The implicit induction variable ``i`` is a PHI node incremented by an ADD
  node each iteration (a genuine recurrence, as in the paper's DFGs).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dfg.graph import DFG, Opcode
from repro.exceptions import FrontendError
from repro.frontend.ast_nodes import (
    ArrayAssign,
    ArrayRef,
    BinaryOp,
    Expr,
    Number,
    Program,
    ScalarAssign,
    Select,
    Statement,
    Variable,
)
from repro.frontend.parser import parse_program

_BINARY_OPCODES: dict[str, Opcode] = {
    "+": Opcode.ADD,
    "-": Opcode.SUB,
    "*": Opcode.MUL,
    "/": Opcode.DIV,
    "%": Opcode.DIV,
    "&": Opcode.AND,
    "|": Opcode.OR,
    "^": Opcode.XOR,
    "<<": Opcode.SHL,
    ">>": Opcode.SHR,
    "<": Opcode.LT,
    ">": Opcode.GT,
    "<=": Opcode.GT,
    ">=": Opcode.LT,
    "==": Opcode.EQ,
    "!=": Opcode.EQ,
}

INDUCTION_VARIABLE = "i"


@dataclass
class DFGBuilder:
    """Lowers a parsed :class:`Program` into a :class:`DFG`."""

    name: str = "kernel"
    include_induction_variable: bool = True
    _dfg: DFG = field(init=False)
    _scalar_defs: dict[str, int] = field(default_factory=dict, init=False)
    _pending_phis: dict[str, int] = field(default_factory=dict, init=False)
    _constants: dict[int, int] = field(default_factory=dict, init=False)
    _invariants: dict[str, int] = field(default_factory=dict, init=False)
    _last_store: dict[str, int] = field(default_factory=dict, init=False)
    _loads_since_store: dict[str, list[int]] = field(default_factory=dict, init=False)
    _assigned_scalars: set[str] = field(default_factory=set, init=False)

    def __post_init__(self) -> None:
        self._dfg = DFG(name=self.name)

    # ------------------------------------------------------------------
    def build(self, program: Program) -> DFG:
        """Lower ``program`` and return the resulting DFG."""
        self._assigned_scalars = set(program.assigned_scalars)
        if self.include_induction_variable:
            self._build_induction_variable()
        for statement in program.statements:
            self._lower_statement(statement)
        self._close_pending_phis()
        self._dfg.validate()
        return self._dfg

    # ------------------------------------------------------------------
    # Induction variable
    # ------------------------------------------------------------------
    def _build_induction_variable(self) -> None:
        phi = self._dfg.add_node(opcode=Opcode.PHI, name=INDUCTION_VARIABLE)
        one = self._constant(1)
        increment = self._dfg.add_node(opcode=Opcode.ADD, name=f"{INDUCTION_VARIABLE}_next")
        self._dfg.add_edge(phi.node_id, increment.node_id)
        self._dfg.add_edge(one, increment.node_id, operand_index=1)
        self._dfg.add_edge(increment.node_id, phi.node_id, distance=1)
        self._scalar_defs[INDUCTION_VARIABLE] = phi.node_id

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def _lower_statement(self, statement: Statement) -> None:
        if isinstance(statement, ScalarAssign):
            value = self._lower_expr(statement.value)
            self._scalar_defs[statement.name] = value
        elif isinstance(statement, ArrayAssign):
            index = self._lower_expr(statement.index)
            value = self._lower_expr(statement.value)
            store = self._dfg.add_node(opcode=Opcode.STORE, name=f"store_{statement.array}")
            self._dfg.add_edge(index, store.node_id, operand_index=0)
            self._dfg.add_edge(value, store.node_id, operand_index=1)
            # Conservative memory ordering: loads of the same array issued in
            # the next iteration depend on this store.
            for load in self._loads_since_store.get(statement.array, []):
                self._dfg.add_edge(store.node_id, load, distance=1)
            self._loads_since_store[statement.array] = []
            self._last_store[statement.array] = store.node_id
        else:  # pragma: no cover - grammar produces only the two kinds above
            raise FrontendError(f"unsupported statement {statement!r}")

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def _lower_expr(self, expr: Expr) -> int:
        if isinstance(expr, Number):
            return self._constant(expr.value)
        if isinstance(expr, Variable):
            return self._lower_variable(expr.name)
        if isinstance(expr, ArrayRef):
            return self._lower_array_ref(expr)
        if isinstance(expr, BinaryOp):
            lhs = self._lower_expr(expr.lhs)
            rhs = self._lower_expr(expr.rhs)
            opcode = _BINARY_OPCODES.get(expr.operator)
            if opcode is None:
                raise FrontendError(f"unsupported operator {expr.operator!r}")
            node = self._dfg.add_node(opcode=opcode)
            self._dfg.add_edge(lhs, node.node_id, operand_index=0)
            self._dfg.add_edge(rhs, node.node_id, operand_index=1)
            return node.node_id
        if isinstance(expr, Select):
            condition = self._lower_expr(expr.condition)
            if_true = self._lower_expr(expr.if_true)
            if_false = self._lower_expr(expr.if_false)
            node = self._dfg.add_node(opcode=Opcode.SELECT)
            self._dfg.add_edge(condition, node.node_id, operand_index=0)
            self._dfg.add_edge(if_true, node.node_id, operand_index=1)
            self._dfg.add_edge(if_false, node.node_id, operand_index=2)
            return node.node_id
        raise FrontendError(f"unsupported expression {expr!r}")

    def _lower_variable(self, name: str) -> int:
        if name in self._scalar_defs:
            return self._scalar_defs[name]
        if name in self._assigned_scalars:
            # Read before write: loop-carried accumulator, becomes a PHI whose
            # back edge is connected once the defining statement is lowered.
            phi = self._dfg.add_node(opcode=Opcode.PHI, name=name)
            self._pending_phis[name] = phi.node_id
            self._scalar_defs[name] = phi.node_id
            return phi.node_id
        # Never written inside the body: loop invariant.
        if name not in self._invariants:
            node = self._dfg.add_node(opcode=Opcode.CONST, name=name)
            self._invariants[name] = node.node_id
        return self._invariants[name]

    def _lower_array_ref(self, expr: ArrayRef) -> int:
        index = self._lower_expr(expr.index)
        load = self._dfg.add_node(opcode=Opcode.LOAD, name=f"load_{expr.array}")
        self._dfg.add_edge(index, load.node_id, operand_index=0)
        self._loads_since_store.setdefault(expr.array, []).append(load.node_id)
        # A load following a store to the same array in the same iteration
        # depends on it (no alias analysis: conservative ordering).
        if expr.array in self._last_store:
            self._dfg.add_edge(self._last_store[expr.array], load.node_id)
        return load.node_id

    def _constant(self, value: int) -> int:
        if value not in self._constants:
            node = self._dfg.add_node(opcode=Opcode.CONST, name=str(value), constant=value)
            self._constants[value] = node.node_id
        return self._constants[value]

    # ------------------------------------------------------------------
    def _close_pending_phis(self) -> None:
        """Connect accumulator PHIs to the final definition of their scalar."""
        for name, phi_node in self._pending_phis.items():
            final_def = self._scalar_defs.get(name)
            if final_def is None or final_def == phi_node:
                raise FrontendError(
                    f"scalar {name!r} is read before being written but never "
                    "receives a new value"
                )
            self._dfg.add_edge(final_def, phi_node, distance=1)


def compile_loop(source: str, name: str = "kernel",
                 include_induction_variable: bool = True) -> DFG:
    """Compile loop-kernel source text into a :class:`DFG`.

    This is the front-end entry point used by the kernel suite and by the
    examples; it corresponds to the "DFG generation" stage of the paper's
    toolchain (Figure 3).
    """
    program = parse_program(source)
    builder = DFGBuilder(name=name, include_induction_variable=include_induction_variable)
    return builder.build(program)
