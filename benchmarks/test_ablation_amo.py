"""Ablation — at-most-one encoding choice (DESIGN.md §5).

The paper's Equations 1–2 describe the textbook pairwise at-most-one
encoding; the production encoder defaults to the sequential (Sinz) encoding.
This ablation times encode+solve of one mapping instance under each encoding
and checks they agree on satisfiability.
"""

from __future__ import annotations

import pytest

from repro.cgra.architecture import CGRA
from repro.core.encoder import EncoderConfig, MappingEncoder
from repro.core.mobility import KernelMobilitySchedule, MobilitySchedule
from repro.kernels import get_kernel
from repro.sat.encodings import AMOEncoding
from repro.sat.solver import CDCLSolver

_KERNEL = "basicmath"
_SIZE = 3
_II = 3


def _encode_and_solve(amo: AMOEncoding):
    dfg = get_kernel(_KERNEL)
    cgra = CGRA.square(_SIZE)
    kms = KernelMobilitySchedule.build(MobilitySchedule.build(dfg), _II)
    encoding = MappingEncoder(dfg, cgra, kms, EncoderConfig(amo_encoding=amo)).encode()
    result = CDCLSolver().solve(encoding.cnf, time_limit=60)
    return encoding, result


@pytest.mark.parametrize("amo", list(AMOEncoding))
def test_amo_encoding_ablation(benchmark, amo):
    encoding, result = benchmark.pedantic(
        _encode_and_solve, args=(amo,), rounds=1, iterations=1
    )
    benchmark.extra_info["encoding"] = amo.value
    benchmark.extra_info["clauses"] = encoding.stats.num_clauses
    benchmark.extra_info["variables"] = encoding.stats.num_variables
    benchmark.extra_info["status"] = result.status
    assert result.status in ("SAT", "UNSAT")
    # All encodings must agree with the sequential default.
    _, reference = _encode_and_solve(AMOEncoding.SEQUENTIAL)
    assert result.status == reference.status
