"""Scalability sweep — encoding size and mapping time vs DFG size.

Not a figure of the paper, but the ablation DESIGN.md calls for: how the CNF
size and the SAT mapping time grow with the kernel size (layered synthetic
DFGs) on a fixed 4x4 fabric.  Useful for spotting regressions in the encoder
or solver.
"""

from __future__ import annotations

import pytest

from repro.cgra.architecture import CGRA
from repro.core.mapper import MapperConfig, SatMapItMapper
from repro.kernels.generators import random_layered_dfg

_SHAPES = [(3, 3), (4, 4), (5, 4), (6, 5)]  # (layers, width)


@pytest.mark.parametrize("layers,width", _SHAPES)
def test_mapping_time_vs_dfg_size(benchmark, layers, width):
    dfg = random_layered_dfg(num_layers=layers, width=width, seed=42)
    cgra = CGRA.square(4)
    mapper = SatMapItMapper(MapperConfig(timeout=60))
    outcome = benchmark.pedantic(mapper.map, args=(dfg, cgra), rounds=1, iterations=1)
    benchmark.extra_info["nodes"] = dfg.num_nodes
    benchmark.extra_info["ii"] = outcome.ii
    benchmark.extra_info["status"] = outcome.final_status
    if outcome.success:
        assert outcome.mapping.violations() == []
