#!/usr/bin/env python
"""Tracked perf harness — thin executable wrapper.

Runs the pinned, seeded kernel x architecture suite defined in
:mod:`repro.experiments.perf` and writes ``BENCH_solver.json`` (median mapper
wall time, solve time, encode time, conflicts, propagations/s per case).

Usage::

    PYTHONPATH=src python benchmarks/perf_harness.py
    PYTHONPATH=src python benchmarks/perf_harness.py --suite quick --repeats 1
    PYTHONPATH=src python benchmarks/perf_harness.py --baseline BENCH_solver.json

The same harness is exposed as ``python -m repro.cli bench``.  With
``--baseline`` it compares the fresh run against a previous JSON document and
exits non-zero only on *gross* (>3x by default) per-case slowdown or an II
mismatch — the CI perf job uses exactly this gate.
"""

import sys

from repro.experiments.perf import main

if __name__ == "__main__":
    sys.exit(main())
