"""Section V headline — "SAT-MapIt obtains better results in 47.72 % of cases".

Runs after the Figure-6 and Table items (file name sorts last) so the
collector already holds every (kernel, size, mapper) record of the configured
protocol; it then checks the two qualitative claims the paper makes:

* SAT-MapIt's II is never worse than the best heuristic II, and
* it is strictly better (lower II, or a valid mapping where the heuristics
  found none) on a non-trivial fraction of the pairs.

The exact 47.72 % depends on the authors' DFGs and binaries; the reproduction
records the measured fraction in the generated report.
"""

from __future__ import annotations

from repro.experiments.runner import PATHSEEKER, RAMP, SAT_MAPIT
from repro.experiments.tables import headline_winrate


def test_headline_winrate(benchmark, collector, bench_config):
    def compute():
        for kernel in bench_config.kernels:
            for size in bench_config.sizes:
                for mapper in (SAT_MAPIT, RAMP, PATHSEEKER):
                    collector.run(kernel, size, mapper)
        return headline_winrate(collector.sweep())

    wins, total, fraction = benchmark.pedantic(compute, rounds=1, iterations=1)
    benchmark.extra_info["wins"] = wins
    benchmark.extra_info["total_pairs"] = total
    benchmark.extra_info["fraction"] = round(fraction, 4)
    assert total == len(bench_config.kernels) * len(bench_config.sizes)

    # Paper shape 1: never worse on any pair where both tools completed.
    sweep = collector.sweep()
    for kernel in bench_config.kernels:
        for size in bench_config.sizes:
            sat = sweep.record(kernel, size, SAT_MAPIT)
            soa = sweep.best_soa(kernel, size)
            if sat is None or soa is None:
                continue
            if sat.succeeded and soa.succeeded:
                assert sat.ii <= soa.ii, (
                    f"SAT-MapIt II {sat.ii} worse than heuristics {soa.ii} on "
                    f"{kernel} {size}x{size}"
                )

    # Paper shape 2: strictly better somewhere (47.72 % in the paper).
    assert wins >= 1
