"""Chaos smoke: a faulted farm sweep must equal the fault-free one.

Runs a small sweep twice through the leased work-queue farm
(``repro.farm``): once clean, once with the fault injector killing a
worker on its first item *and* dooming every item's first backend
attempt.  The run fails unless the faulted sweep produces identical
records (kernel, size, mapper, scenario, status, II) with nonzero
retry/crash counters — the farm's headline invariant, exercised by the
CI ``chaos-smoke`` job::

    PYTHONPATH=src python benchmarks/chaos_smoke.py

``--full`` (the nightly flavour) adds two more faulted rounds: a
SIGSTOP-wedged worker recovered by lease expiry, and a mid-run cache
corruption that must be detected rather than served.

Not a pytest module on purpose — this is the operational drill, kept
runnable on its own so an operator can point it at a suspect machine;
the fine-grained chaos matrix lives in ``tests/farm/``.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time

from repro.experiments.runner import (
    RAMP,
    SAT_MAPIT,
    ExperimentConfig,
    run_sweep,
)
from repro.farm.faults import FaultPlan

CONFIG = ExperimentConfig(
    kernels=("srand", "basicmath"),
    sizes=(3,),
    mappers=(SAT_MAPIT, RAMP),
    timeout=120.0,
)
JOBS = 2


def _shape(sweep) -> list[tuple]:
    return [
        (r.kernel, r.size, r.mapper, r.scenario, r.status, r.ii)
        for r in sweep.records
    ]


def _run_round(name: str, clean_shape: list[tuple], plan: FaultPlan) -> int:
    start = time.perf_counter()
    faulted = run_sweep(CONFIG, jobs=JOBS, faults=plan)
    wall = time.perf_counter() - start
    farm = faulted.farm
    print(f"{name}: {farm.summary()} ({wall:.1f}s)")
    failures = 0
    if _shape(faulted) != clean_shape:
        print(f"{name}: FAIL — faulted records differ from the clean sweep",
              file=sys.stderr)
        for clean_row, bad_row in zip(clean_shape, _shape(faulted)):
            marker = "  " if clean_row == bad_row else "! "
            print(f"  {marker}{clean_row} vs {bad_row}", file=sys.stderr)
        failures += 1
    if farm.retries < 1:
        print(f"{name}: FAIL — no retries recorded; were faults injected?",
              file=sys.stderr)
        failures += 1
    if farm.quarantined:
        print(f"{name}: FAIL — {farm.quarantined} item(s) quarantined",
              file=sys.stderr)
        failures += 1
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="chaos_smoke",
        description="Diff a fault-injected farm sweep against a clean one",
    )
    parser.add_argument("--full", action="store_true",
                        help="also run the wedge and cache-corruption "
                             "rounds (the nightly flavour)")
    args = parser.parse_args(argv)

    print(f"chaos smoke: kernels={','.join(CONFIG.kernels)} "
          f"sizes={','.join(str(s) for s in CONFIG.sizes)} jobs={JOBS}")
    start = time.perf_counter()
    clean = run_sweep(CONFIG, jobs=JOBS)
    clean_shape = _shape(clean)
    print(f"clean: {clean.farm.summary()} "
          f"({time.perf_counter() - start:.1f}s)")
    if clean.farm.retries or clean.farm.worker_crashes:
        print("clean: FAIL — the fault-free sweep recorded faults",
              file=sys.stderr)
        return 1

    # The smoke round: one worker SIGKILLed on its first item, and every
    # item's first backend attempt doomed.  Both fault kinds must be
    # absorbed by requeue + retry without changing a single record.
    failures = _run_round(
        "kill+backend",
        clean_shape,
        FaultPlan(kill_worker_after=0, backend_fail_rate=1.0,
                  backend_fail_attempts=1),
    )

    if args.full:
        wedge_config = ExperimentConfig(
            kernels=CONFIG.kernels,
            sizes=CONFIG.sizes,
            mappers=CONFIG.mappers,
            timeout=CONFIG.timeout,
            lease_ttl=2.0,
        )
        start = time.perf_counter()
        wedged = run_sweep(wedge_config, jobs=JOBS,
                           faults=FaultPlan(wedge_worker_after=0))
        wall = time.perf_counter() - start
        print(f"wedge: {wedged.farm.summary()} ({wall:.1f}s)")
        if _shape(wedged) != clean_shape or wedged.farm.leases_expired < 1:
            print("wedge: FAIL — records differ or no lease expired",
                  file=sys.stderr)
            failures += 1
        with tempfile.TemporaryDirectory(prefix="chaos-cache-") as cache_dir:
            cache_config = ExperimentConfig(
                kernels=CONFIG.kernels,
                sizes=CONFIG.sizes,
                mappers=CONFIG.mappers,
                timeout=CONFIG.timeout,
                cache_dir=cache_dir,
            )
            start = time.perf_counter()
            corrupted = run_sweep(cache_config, jobs=JOBS,
                                  faults=FaultPlan(corrupt_cache_after=0))
            resweep = run_sweep(cache_config, jobs=JOBS)
            wall = time.perf_counter() - start
            print(f"cache-corrupt: {corrupted.farm.summary()} ({wall:.1f}s)")
            if _shape(corrupted) != clean_shape or _shape(resweep) != clean_shape:
                print("cache-corrupt: FAIL — a corrupted entry leaked into "
                      "the records", file=sys.stderr)
                failures += 1

    if failures:
        print(f"chaos smoke FAILED ({failures} check(s))", file=sys.stderr)
        return 1
    print("chaos smoke passed: faulted sweeps matched the clean records")
    return 0


if __name__ == "__main__":
    sys.exit(main())
