"""End-to-end service smoke: serve == CLI on the same problem.

Starts ``repro serve`` as a real subprocess, maps one kernel through
``POST /map`` + ``GET /jobs/{id}``, maps the same kernel through
``repro map``, and fails unless both report the same II.  Run by the CI
``service-smoke`` job::

    PYTHONPATH=src python benchmarks/service_smoke.py

Not a pytest module on purpose — the point is the real process boundary
(subprocess, socket, SIGINT shutdown), which the in-process tests under
``tests/service/`` deliberately avoid for speed.
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request

KERNEL, ROWS, COLS = "srand", 3, 3
STARTUP_DEADLINE_S = 30.0
SOLVE_DEADLINE_S = 120.0


def wait_for_port(process: subprocess.Popen) -> int:
    """Parse the listening port from the service's banner line."""
    deadline = time.monotonic() + STARTUP_DEADLINE_S
    assert process.stdout is not None
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            raise SystemExit(
                f"service exited before listening (rc={process.poll()})"
            )
        sys.stdout.write(line)
        match = re.search(r"http://[\d.]+:(\d+)", line)
        if match:
            return int(match.group(1))
    raise SystemExit("service did not print its listening banner in time")


def http(url: str, data: bytes | None = None) -> tuple[int, dict]:
    request = urllib.request.Request(url, data=data)
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def main() -> int:
    env = dict(os.environ, PYTHONUNBUFFERED="1")
    with tempfile.TemporaryDirectory() as cache:
        server = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
             "--pool", "2", "--cache", cache],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
            env=env,
        )
        try:
            port = wait_for_port(server)
            base = f"http://127.0.0.1:{port}"

            status, health = http(base + "/healthz")
            assert status == 200 and health["status"] == "ok", health

            body = json.dumps({
                "kernel": KERNEL,
                "arch": {"rows": ROWS, "cols": COLS},
                "config": {"timeout": 60, "random_seed": 0},
            }).encode()
            status, submitted = http(base + "/map", body)
            assert status in (200, 202), submitted
            job_id = submitted["job"]

            deadline = time.monotonic() + SOLVE_DEADLINE_S
            payload = submitted
            while payload["status"] not in ("done", "failed", "cancelled"):
                if time.monotonic() > deadline:
                    raise SystemExit(f"job stuck: {payload}")
                time.sleep(0.5)
                status, payload = http(f"{base}/jobs/{job_id}")
                assert status == 200, payload
            assert payload["status"] == "done", payload
            served_ii = payload["result"]["ii"]
            print(f"service: {KERNEL} on {ROWS}x{COLS} -> II={served_ii}")

            status, stats = http(base + "/stats")
            assert status == 200, stats
            assert stats["requests"]["completed"] == 1, stats
            print(f"service stats: {json.dumps(stats['requests'])}")
        finally:
            server.send_signal(signal.SIGINT)
            try:
                server.wait(timeout=30)
            except subprocess.TimeoutExpired:
                server.kill()
                server.wait()
                raise SystemExit("service ignored SIGINT")

    cli = subprocess.run(
        [sys.executable, "-m", "repro.cli", "map", "--kernel", KERNEL,
         "--rows", str(ROWS), "--cols", str(COLS), "--timeout", "60"],
        capture_output=True, text=True, env=env, timeout=SOLVE_DEADLINE_S,
    )
    print(cli.stdout, end="")
    if cli.returncode != 0:
        raise SystemExit(f"repro map failed: {cli.stderr}")
    match = re.search(r"II=(\d+)", cli.stdout)
    if not match:
        raise SystemExit("repro map output carried no II")
    cli_ii = int(match.group(1))

    if served_ii != cli_ii:
        raise SystemExit(
            f"II mismatch: service={served_ii}, repro map={cli_ii}"
        )
    print(f"OK: service and CLI agree on II={served_ii}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
