"""Figure 6 — achieved II per benchmark and mesh size (SAT-MapIt side).

Every benchmark item maps one kernel on one mesh with SAT-MapIt and reports
the wall-clock mapping time (the quantity Tables I–IV track); the achieved II
is recorded in the collector and rendered as the Figure-6 panels at the end of
the session.  The paper's shape is asserted per item: whenever the run
completes, the II is at least the MII bound and the mapping is legal by
construction.
"""

from __future__ import annotations

from repro.experiments.runner import SAT_MAPIT


def test_satmapit_ii(benchmark, collector, bench_kernel, bench_size):
    record = benchmark.pedantic(
        collector.run, args=(bench_kernel, bench_size, SAT_MAPIT),
        rounds=1, iterations=1,
    )
    benchmark.extra_info["kernel"] = bench_kernel
    benchmark.extra_info["mesh"] = f"{bench_size}x{bench_size}"
    benchmark.extra_info["status"] = record.status
    benchmark.extra_info["ii"] = record.ii
    benchmark.extra_info["mii"] = record.minimum_ii
    if record.succeeded:
        assert record.ii >= record.minimum_ii
    else:
        # Large kernels on large meshes may exhaust the scaled-down budget;
        # that is reported (the paper's own protocol also contains timeouts).
        assert record.status in ("timeout", "failed")
