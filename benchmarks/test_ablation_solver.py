"""Ablation — SAT solver features on mapping formulas (DESIGN.md §5).

Compares the production CDCL configuration against degraded variants (no
symmetry breaking, no restarts, the reference DPLL solver) on one mapping
instance, recording solve time and conflicts.  All variants must agree on
satisfiability.
"""

from __future__ import annotations

import pytest

from repro.cgra.architecture import CGRA
from repro.core.encoder import EncoderConfig, MappingEncoder
from repro.core.mobility import KernelMobilitySchedule, MobilitySchedule
from repro.dfg.graph import paper_running_example
from repro.sat.dpll import DPLLSolver
from repro.sat.solver import CDCLSolver


def _instance(symmetry_breaking: bool = True):
    dfg = paper_running_example()
    cgra = CGRA.square(2)
    kms = KernelMobilitySchedule.build(MobilitySchedule.build(dfg), 3)
    return MappingEncoder(
        dfg, cgra, kms, EncoderConfig(symmetry_breaking=symmetry_breaking)
    ).encode()


def test_cdcl_default(benchmark):
    encoding = _instance()
    result = benchmark.pedantic(
        CDCLSolver().solve, args=(encoding.cnf,), rounds=1, iterations=1
    )
    benchmark.extra_info["conflicts"] = result.stats.conflicts
    assert result.is_sat


def test_cdcl_without_symmetry_breaking(benchmark):
    encoding = _instance(symmetry_breaking=False)
    result = benchmark.pedantic(
        CDCLSolver().solve, args=(encoding.cnf,), rounds=1, iterations=1
    )
    benchmark.extra_info["conflicts"] = result.stats.conflicts
    assert result.is_sat


def test_cdcl_without_restarts(benchmark):
    encoding = _instance()
    solver = CDCLSolver(restart_base=10**9)
    result = benchmark.pedantic(solver.solve, args=(encoding.cnf,), rounds=1, iterations=1)
    benchmark.extra_info["conflicts"] = result.stats.conflicts
    assert result.is_sat


def test_cdcl_constructive_phase(benchmark):
    encoding = _instance()
    solver = CDCLSolver(initial_phase=True)
    result = benchmark.pedantic(solver.solve, args=(encoding.cnf,), rounds=1, iterations=1)
    benchmark.extra_info["conflicts"] = result.stats.conflicts
    assert result.is_sat


@pytest.mark.parametrize("dummy", ["dpll"])
def test_reference_dpll(benchmark, dummy):
    encoding = _instance()
    model = benchmark.pedantic(
        DPLLSolver().solve, args=(encoding.cnf,), rounds=1, iterations=1
    )
    assert model is not None
