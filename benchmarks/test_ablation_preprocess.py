"""Ablation — SatELite-style CNF preprocessing (DESIGN.md §8).

Times encode+simplify+solve of one mapping instance with the preprocessor on
and off, checks the two agree on satisfiability, and records the clause and
variable reduction the pipeline buys on a real encoder formula.  A second
item runs the full iterative mapper both ways and asserts the achieved II is
identical (the metamorphic guarantee the test-suite enforces on more
kernels).
"""

from __future__ import annotations

import pytest

from repro.cgra.architecture import CGRA
from repro.core.encoder import EncoderConfig, MappingEncoder
from repro.core.mapper import MapperConfig, SatMapItMapper
from repro.core.mobility import KernelMobilitySchedule, MobilitySchedule
from repro.kernels import get_kernel
from repro.sat.preprocess import simplify
from repro.sat.solver import CDCLSolver

_KERNEL = "basicmath"
_SIZE = 3
_II = 3


def _encode(kernel: str = _KERNEL, size: int = _SIZE, ii: int = _II):
    dfg = get_kernel(kernel)
    cgra = CGRA.square(size)
    kms = KernelMobilitySchedule.build(MobilitySchedule.build(dfg), ii)
    return MappingEncoder(dfg, cgra, kms, EncoderConfig()).encode()


def _solve(preprocess: bool):
    encoding = _encode()
    cnf = encoding.cnf
    stats = None
    reconstructor = None
    if preprocess:
        cnf, reconstructor, stats = simplify(
            cnf, frozen=encoding.variables.values()
        )
    result = CDCLSolver().solve(cnf, time_limit=60)
    return encoding, result, stats, reconstructor


@pytest.mark.parametrize("preprocess", [False, True], ids=["off", "on"])
def test_preprocess_single_instance_ablation(benchmark, preprocess):
    encoding, result, stats, reconstructor = benchmark.pedantic(
        _solve, args=(preprocess,), rounds=1, iterations=1
    )
    benchmark.extra_info["preprocess"] = preprocess
    benchmark.extra_info["clauses"] = encoding.stats.num_clauses
    benchmark.extra_info["status"] = result.status
    assert result.status in ("SAT", "UNSAT")
    if preprocess:
        assert stats is not None
        benchmark.extra_info["clauses_removed"] = stats.clauses_removed
        benchmark.extra_info["vars_removed"] = stats.variables_removed
        assert stats.clauses_removed > 0
        if result.is_sat:
            model = reconstructor.extend(result.model)
            assert encoding.cnf.evaluate(model)
    # Both configurations must agree with the unpreprocessed verdict.
    _, reference, _, _ = _solve(False)
    assert result.status == reference.status


def test_preprocess_full_mapping_ablation(benchmark, bench_config):
    def run():
        outcomes = {}
        for preprocess in (False, True):
            mapper = SatMapItMapper(
                MapperConfig(timeout=bench_config.timeout, preprocess=preprocess)
            )
            outcomes[preprocess] = mapper.map(
                get_kernel(_KERNEL), CGRA.square(_SIZE)
            )
        return outcomes

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    plain, preprocessed = outcomes[False], outcomes[True]
    assert plain.success and preprocessed.success
    assert plain.ii == preprocessed.ii
    benchmark.extra_info["ii"] = plain.ii
    benchmark.extra_info["clauses_removed"] = preprocessed.pre_clauses_removed
    benchmark.extra_info["preprocess_time"] = round(preprocessed.preprocess_time, 4)
    assert preprocessed.pre_clauses_removed > 0
