"""Tables I–IV — mapping time of the heuristic baselines.

Together with ``test_figure6_ii.py`` (which times the SAT-MapIt runs) these
items provide both columns of the paper's per-mesh mapping-time tables; the
rendered tables are printed at the end of the benchmark session and written to
``EXPERIMENTS_generated.md``.
"""

from __future__ import annotations


def test_baseline_mapping_time(benchmark, collector, bench_kernel, bench_size,
                               bench_baseline):
    record = benchmark.pedantic(
        collector.run, args=(bench_kernel, bench_size, bench_baseline),
        rounds=1, iterations=1,
    )
    benchmark.extra_info["kernel"] = bench_kernel
    benchmark.extra_info["mesh"] = f"{bench_size}x{bench_size}"
    benchmark.extra_info["mapper"] = bench_baseline
    benchmark.extra_info["status"] = record.status
    benchmark.extra_info["ii"] = record.ii
    if record.succeeded:
        assert record.ii >= record.minimum_ii
