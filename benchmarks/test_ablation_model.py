"""Ablation — architecture/transfer model strictness (DESIGN.md §5).

Three mapper variants on the same kernel and fabric:

* relaxed (default): consumers read the producer's register file, register
  allocation accounts for liveness;
* strict output-register model: the paper's Equation-5 survival clauses;
* the paper's "at most one iteration apart" literal-pair restriction.

Stricter models can only keep the II equal or push it up; the bench records
the achieved II and mapping time of each variant.
"""

from __future__ import annotations

import pytest

from repro.cgra.architecture import CGRA
from repro.core.mapper import MapperConfig, SatMapItMapper
from repro.kernels import get_kernel

_KERNEL = "srand"
_SIZE = 2

_VARIANTS = {
    "relaxed-default": MapperConfig(timeout=60),
    "strict-output-register": MapperConfig(
        timeout=60, enforce_output_register=True, neighbour_register_file_access=False
    ),
    "paper-iteration-span-1": MapperConfig(timeout=60, max_iteration_span=1),
}


@pytest.mark.parametrize("variant", list(_VARIANTS))
def test_transfer_model_ablation(benchmark, variant):
    config = _VARIANTS[variant]
    outcome = benchmark.pedantic(
        SatMapItMapper(config).map,
        args=(get_kernel(_KERNEL), CGRA.square(_SIZE)),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["variant"] = variant
    benchmark.extra_info["ii"] = outcome.ii
    benchmark.extra_info["status"] = outcome.final_status
    assert outcome.success

    baseline = SatMapItMapper(_VARIANTS["relaxed-default"]).map(
        get_kernel(_KERNEL), CGRA.square(_SIZE)
    )
    assert outcome.ii >= baseline.ii
