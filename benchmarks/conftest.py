"""Shared configuration and result collection for the benchmark harness.

The harness reproduces the paper's evaluation protocol (Figure 6 and Tables
I–IV): map every benchmark kernel on square meshes with SAT-MapIt, RAMP and
PathSeeker, compare the achieved IIs and the mapping times.

Because the full protocol (11 kernels x 4 mesh sizes x 3 mappers, 4000 s
timeout) is sized for the authors' machine and a native SAT solver, the
default benchmark run uses a scaled-down subset that finishes in minutes on a
laptop with the bundled pure-Python CDCL solver.  Environment variables widen
it back to the paper's protocol:

* ``SATMAPIT_BENCH_KERNELS`` — comma-separated kernel names (default: a
  representative subset; ``all`` selects all eleven).
* ``SATMAPIT_BENCH_SIZES``   — comma-separated mesh sizes (default ``2,3``).
* ``SATMAPIT_BENCH_TIMEOUT`` — per-run timeout in seconds (default 30).
* ``SATMAPIT_BENCH_FULL=1``  — shorthand for all kernels, sizes 2-5 and a
  300 s timeout.

At the end of the session the collected results are rendered as the Figure-6
panels, the Tables I–IV mapping times and the Section-V headline, and written
to ``benchmarks/EXPERIMENTS_generated.md``.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments.report import render_markdown_report
from repro.experiments.runner import (
    PATHSEEKER,
    RAMP,
    SAT_MAPIT,
    ExperimentConfig,
    RunRecord,
    SweepResult,
    run_single,
)
from repro.experiments.tables import (
    render_figure6,
    render_headline,
    render_mapping_time_table,
)
from repro.kernels import all_kernel_names

_DEFAULT_KERNELS = ("srand", "basicmath", "stringsearch", "nw", "gsm")
_TABLE_NUMBERS = {2: "I", 3: "II", 4: "III", 5: "IV"}


def _bench_config() -> ExperimentConfig:
    if os.environ.get("SATMAPIT_BENCH_FULL") == "1":
        kernels = tuple(all_kernel_names())
        sizes = (2, 3, 4, 5)
        timeout = float(os.environ.get("SATMAPIT_BENCH_TIMEOUT", "300"))
    else:
        kernel_env = os.environ.get("SATMAPIT_BENCH_KERNELS", "")
        if kernel_env.strip().lower() == "all":
            kernels = tuple(all_kernel_names())
        elif kernel_env.strip():
            kernels = tuple(name.strip() for name in kernel_env.split(","))
        else:
            kernels = _DEFAULT_KERNELS
        size_env = os.environ.get("SATMAPIT_BENCH_SIZES", "2,3")
        sizes = tuple(int(token) for token in size_env.split(","))
        timeout = float(os.environ.get("SATMAPIT_BENCH_TIMEOUT", "30"))
    return ExperimentConfig(
        kernels=kernels,
        sizes=sizes,
        timeout=timeout,
        pathseeker_repeats=int(os.environ.get("SATMAPIT_BENCH_PS_REPEATS", "1")),
    )


class ResultCollector:
    """Caches one RunRecord per (kernel, size, mapper), computed on demand."""

    def __init__(self, config: ExperimentConfig) -> None:
        self.config = config
        self._records: dict[tuple[str, int, str], RunRecord] = {}

    def run(self, kernel: str, size: int, mapper: str) -> RunRecord:
        key = (kernel, size, mapper)
        if key not in self._records:
            self._records[key] = run_single(kernel, size, mapper, self.config)
        return self._records[key]

    def sweep(self) -> SweepResult:
        sweep = SweepResult(config=self.config)
        sweep.records.extend(self._records.values())
        return sweep


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    return _bench_config()


@pytest.fixture(scope="session")
def collector(bench_config) -> ResultCollector:
    return ResultCollector(bench_config)


@pytest.fixture(scope="session", autouse=True)
def _report_at_session_end(request, collector, bench_config):
    """Print the paper artefacts and write the generated report on teardown."""
    yield
    sweep = collector.sweep()
    if not sweep.records:
        return
    lines = ["", "=" * 78, "SAT-MapIt reproduction — collected evaluation artefacts",
             "=" * 78, render_headline(sweep)]
    for size in bench_config.sizes:
        lines.append("")
        lines.append(render_figure6(sweep, size))
    for size in bench_config.sizes:
        lines.append("")
        lines.append(
            render_mapping_time_table(sweep, size, number=_TABLE_NUMBERS.get(size, "?"))
        )
    print("\n".join(lines))
    output = Path(__file__).parent / "EXPERIMENTS_generated.md"
    output.write_text(render_markdown_report(sweep), encoding="utf-8")
    print(f"\nreport written to {output}")


def pytest_generate_tests(metafunc):
    """Parametrise benchmark tests over the configured kernels and sizes."""
    config = _bench_config()
    if "bench_kernel" in metafunc.fixturenames:
        metafunc.parametrize("bench_kernel", list(config.kernels))
    if "bench_size" in metafunc.fixturenames:
        metafunc.parametrize("bench_size", list(config.sizes))
    if "bench_baseline" in metafunc.fixturenames:
        metafunc.parametrize("bench_baseline", [RAMP, PATHSEEKER])
