"""Setup shim.

The build environment used for this reproduction has no network access and no
``wheel`` package, so PEP 660 editable installs (which require building a
wheel) are not available.  Keeping a classic ``setup.py`` lets
``pip install -e .`` fall back to the legacy ``setup.py develop`` path; all
project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
